"""Tests for the observability layer: metrics, instrumentation, profiling.

Three layers of guarantees:

* the :class:`~repro.obs.metrics.Metrics` registry itself (counters,
  phase timers, bounded trace ring buffer, hooks, null sink);
* the engine's per-phase operation counters, including the bucket
  invariant *visited + pruned + empty = descents + children* per
  wavelet descent and ``pruned > 0`` on selective queries;
* the class-swap instrumentation and :func:`profile_query`, including
  the ``_Budget.tick`` timeout regression (partial stats must carry the
  counters accumulated before the deadline).
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.engine as engine_mod
from repro.core.engine import RingRPQEngine, _Budget
from repro.core.result import ENGINE_PHASES, QueryStats
from repro.errors import QueryTimeoutError
from repro.obs import (
    CountingBitVector,
    CountingWaveletMatrix,
    Metrics,
    NullMetrics,
    instrument_bitvector,
    instrument_index,
    instrument_matrix,
    instrument_ring,
    profile_query,
)
from repro.obs.metrics import NULL_METRICS
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_matrix import WaveletMatrix
from repro.testing import random_query


# ----------------------------------------------------------------------
# The Metrics registry
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counters(self):
        m = Metrics()
        assert m.count("x") == 0
        m.inc("x")
        m.inc("x", 4)
        assert m.count("x") == 5
        assert m.counters == {"x": 5}

    def test_phase_timer_accumulates(self):
        m = Metrics()
        with m.phase("build"):
            pass
        with m.phase("build"):
            pass
        assert m.phase_seconds["build"] >= 0.0
        m.add_phase("build", 1.0)
        assert m.phase_seconds["build"] >= 1.0

    def test_trace_buffer_is_bounded(self):
        m = Metrics(trace_capacity=3)
        assert m.tracing
        for i in range(7):
            m.record("step", i=i)
        events = list(m.trace_events())
        assert [e.data["i"] for e in events] == [4, 5, 6]
        assert all(e.kind == "step" for e in events)

    def test_tracing_off_by_default(self):
        m = Metrics()
        assert not m.tracing
        m.record("ignored")  # no consumer: must be a silent no-op
        assert list(m.trace_events()) == []

    def test_hooks(self):
        m = Metrics()
        seen = []
        m.add_hook(seen.append)
        assert m.tracing
        m.record("evt", a=1)
        assert len(seen) == 1 and seen[0].data == {"a": 1}
        m.remove_hook(seen.append)
        assert not m.tracing

    def test_event_to_dict(self):
        m = Metrics(trace_capacity=1)
        m.record("evt", node=3)
        (event,) = m.trace_events()
        d = event.to_dict()
        assert d["kind"] == "evt" and d["node"] == 3 and "t" in d

    def test_merge_and_reset(self):
        a, b = Metrics(), Metrics()
        a.inc("x", 2)
        b.inc("x", 3)
        b.add_phase("p", 0.5)
        a.merge(b)
        assert a.count("x") == 5
        assert a.phase_seconds["p"] == 0.5
        a.reset()
        assert a.counters == {} and a.phase_seconds == {}

    def test_snapshot_json_round_trips(self):
        m = Metrics(trace_capacity=2)
        m.inc("ops")
        m.add_phase("total", 0.1)
        m.record("evt", k=1)
        snap = json.loads(m.to_json())
        assert snap["counters"] == {"ops": 1}
        assert snap["phase_seconds"] == {"total": 0.1}
        assert snap["trace"][0]["kind"] == "evt"

    def test_null_metrics_is_inert(self):
        n = NULL_METRICS
        assert isinstance(n, NullMetrics)
        assert not n.enabled and not n.tracing
        n.inc("x", 10)
        n.add_phase("p", 1.0)
        n.record("evt", a=1)
        n.observe("lat", 0.5)
        with n.phase("p"):
            pass
        assert n.count("x") == 0
        assert n.counters == {} and n.phase_seconds == {}
        assert n.histograms == {} and n.histogram("lat") is None
        assert n.spans is None
        assert list(n.trace_events()) == []
        n.set_gauge("g", 1.0)
        assert n.gauge("g") == 0.0 and n.gauges == {}
        assert n.snapshot() == {
            "counters": {}, "gauges": {}, "phase_seconds": {},
            "histograms": {}, "trace": []
        }


class TestMetricsHistograms:
    def test_observe_creates_and_fills(self):
        m = Metrics()
        m.observe("lat", 0.5)
        m.observe("lat", 1.5)
        hist = m.histogram("lat")
        assert hist is not None and hist.count == 2
        assert m.histogram("other") is None

    def test_merge_folds_histograms(self):
        a, b = Metrics(), Metrics()
        a.observe("lat", 1.0)
        b.observe("lat", 2.0)
        b.observe("only_b", 3.0)
        a.merge(b)
        assert a.histogram("lat").count == 2
        assert a.histogram("only_b").count == 1

    def test_reset_clears_histograms_and_spans(self):
        m = Metrics(span_capacity=10)
        m.observe("lat", 1.0)
        m.spans.end(m.spans.start("s"))
        m.reset()
        assert m.histograms == {}
        assert len(m.spans) == 0

    def test_snapshot_carries_histograms(self):
        m = Metrics()
        m.observe("lat", 2.0)
        snap = m.snapshot()
        assert snap["histograms"]["lat"]["count"] == 1


class TestMetricsProperties:
    """Hypothesis properties of the registry's aggregation contracts."""

    pytestmark = pytest.mark.hypothesis

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(st.sampled_from("abcdef"),
                        st.integers(min_value=0, max_value=1_000)),
        st.dictionaries(st.sampled_from("abcdef"),
                        st.integers(min_value=0, max_value=1_000)),
    )
    def test_merge_of_snapshots_equals_sum(self, xs, ys):
        a, b = Metrics(), Metrics()
        for name, n in xs.items():
            a.inc(name, n)
        for name, n in ys.items():
            b.inc(name, n)
        a.merge(b)
        for name in set(xs) | set(ys):
            assert a.count(name) == xs.get(name, 0) + ys.get(name, 0)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=0, max_value=64))
    def test_trace_ring_buffer_bounded_keeps_newest(self, capacity, n):
        m = Metrics(trace_capacity=capacity)
        for i in range(n):
            m.record("step", i=i)
        events = list(m.trace_events())
        assert len(events) <= capacity
        expected = list(range(max(0, n - capacity), n))
        assert [e.data["i"] for e in events] == expected


# ----------------------------------------------------------------------
# Prometheus text exporter
# ----------------------------------------------------------------------


class TestPrometheusExport:
    def test_empty_metrics_export_empty(self):
        from repro.obs.export import prometheus_text

        assert prometheus_text(Metrics()) == ""

    def test_counters_phases_histograms_rendered(self):
        from repro.obs.export import prometheus_text

        m = Metrics()
        m.inc("ring.backward_step", 7)
        m.add_phase("predicates_from_objects", 0.25)
        m.observe("query.seconds", 0.5)
        m.observe("query.seconds", 0.1)
        text = prometheus_text(m)
        assert "# TYPE repro_ring_backward_step_total counter" in text
        assert "repro_ring_backward_step_total 7" in text
        assert ('repro_phase_seconds_total'
                '{phase="predicates_from_objects"} 0.25') in text
        assert "# TYPE repro_query_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_query_seconds_count 2" in text

    def test_histogram_buckets_are_cumulative(self):
        from repro.obs.export import prometheus_text

        m = Metrics()
        for value in (0.0, 0.1, 1.0, 10.0):
            m.observe("lat", value)
        lines = [
            line for line in prometheus_text(m).splitlines()
            if line.startswith("repro_lat_bucket")
        ]
        counts = [float(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 4  # +Inf sees everything

    def test_names_sanitized(self):
        from repro.obs.export import prometheus_text

        m = Metrics()
        m.inc("weird-name.with/chars", 1)
        text = prometheus_text(m)
        assert "repro_weird_name_with_chars_total 1" in text


# ----------------------------------------------------------------------
# Engine operation counters: pruning and bucket invariants
# ----------------------------------------------------------------------


def _assert_bucket_invariants(stats: QueryStats, query) -> None:
    """Every popped wavelet node lands in exactly one bucket, and the
    popped count is the initial descents plus all pushed children."""
    assert stats.lp_nodes + stats.lp_pruned + stats.lp_empty == \
        stats.lp_descents + stats.lp_children, str(query)
    assert stats.ls_nodes + stats.ls_pruned + stats.ls_empty == \
        stats.ls_descents + stats.ls_children, str(query)


class TestEngineCounters:
    def test_pruned_positive_on_selective_query(self, kg_index):
        """A single-predicate closure over a 12-predicate alphabet must
        prune L_p subtrees via the B[v] masks."""
        engine = RingRPQEngine(kg_index, fast_paths=False)
        stats = engine.evaluate("(?x, p0+, ?y)").stats
        assert stats.lp_pruned > 0
        assert stats.lp_nodes > 0
        assert stats.backward_steps > 0
        _assert_bucket_invariants(stats, "(?x, p0+, ?y)")

    def test_no_pruning_when_disabled(self, kg_index):
        engine = RingRPQEngine(kg_index, prune=False, fast_paths=False)
        stats = engine.evaluate("(?x, p0+, ?y)").stats
        assert stats.lp_pruned == 0

    def test_invariants_on_random_queries(self, kg_graph, kg_index):
        rng = random.Random(11)
        engine = RingRPQEngine(kg_index, fast_paths=False)
        for _ in range(15):
            query = random_query(rng, kg_graph)
            stats = engine.evaluate(query, timeout=30).stats
            _assert_bucket_invariants(stats, query)
            counts = stats.operation_counts()
            assert counts["wavelet_nodes"] == \
                stats.lp_nodes + stats.lp_pruned + stats.ls_nodes + \
                stats.ls_pruned
            # two inlined ranks per expanded internal node
            assert counts["rank_ops"] == \
                stats.lp_children + stats.ls_children

    def test_results_identical_with_metrics_enabled(self, kg_index):
        query = "(?x, (p0|p1)+, ?y)"
        plain = kg_index.engine.evaluate(query)
        profiled = kg_index.engine.evaluate(
            query, metrics=Metrics(trace_capacity=100)
        )
        assert plain.pairs == profiled.pairs

    def test_per_call_metrics_override_is_restored(self, small_index):
        engine = RingRPQEngine(small_index)
        assert engine.metrics is NULL_METRICS
        m = Metrics()
        engine.evaluate("(?x, p0, ?y)", metrics=m)
        assert engine.metrics is NULL_METRICS
        assert m.count("engine.queries") == 1
        assert "total" in m.phase_seconds

    def test_ring_obs_restored_after_evaluate(self, small_index):
        ring = small_index.ring
        assert ring.obs is NULL_METRICS
        small_index.engine.evaluate("(?x, p0, ?y)", metrics=Metrics())
        assert ring.obs is NULL_METRICS

    def test_query_latency_histograms_recorded(self, kg_index):
        m = Metrics()
        kg_index.engine.evaluate("(?x, p0+, ?y)", metrics=m)
        kg_index.engine.evaluate("(?x, p1, ?y)", metrics=m)
        hist = m.histogram("query.seconds")
        assert hist is not None and hist.count == 2
        assert hist.max >= hist.min > 0
        assert m.histogram("query.results").count == 2
        assert m.histogram("query.backward_steps").count == 2


# ----------------------------------------------------------------------
# Spans through the engine
# ----------------------------------------------------------------------


class TestEngineSpans:
    def test_span_tree_depth_on_vv_query(self, kg_index):
        """Acceptance: engine phase -> wave/round -> ring step gives a
        tree at least 3 levels deep on a batched v-to-v closure."""
        m = Metrics(span_capacity=100_000)
        kg_index.engine.evaluate("(?x, p0/p1*, ?y)", metrics=m)
        spans = m.spans
        assert spans.max_depth() >= 3
        names = {s.name for s in spans.ordered()}
        assert "query" in names
        assert "wave" in names or "step" in names
        roots = [s for s in spans.ordered() if s.depth == 0]
        assert [r.name for r in roots] == ["query"]

    def test_no_spans_without_span_capacity(self, kg_index):
        m = Metrics()
        kg_index.engine.evaluate("(?x, p0+, ?y)", metrics=m)
        assert m.spans is None

    def test_spans_closed_even_on_timeout(self, kg_index):
        m = Metrics(span_capacity=100_000)
        result = kg_index.engine.evaluate(
            "(?x, (p0|p1|p2)+, ?y)", timeout=0.0, metrics=m
        )
        assert result.stats.timed_out
        assert m.spans._open == []
        query_spans = [
            s for s in m.spans.ordered() if s.name == "query"
        ]
        assert len(query_spans) == 1

    def test_chrome_trace_exportable_from_engine_run(self, kg_index,
                                                     tmp_path):
        m = Metrics(span_capacity=100_000)
        kg_index.engine.evaluate("(?x, p0/p1*, ?y)", metrics=m)
        path = tmp_path / "trace.json"
        m.spans.write_chrome_trace(path)
        trace = json.loads(path.read_text())
        assert len(trace["traceEvents"]) == len(m.spans)


# ----------------------------------------------------------------------
# Differential guard: the default path is bit-identical and silent
# ----------------------------------------------------------------------


class TestNullMetricsDifferential:
    def test_default_run_adds_nothing_and_changes_nothing(self, kg_index):
        """With NULL_METRICS (the default), the span/histogram/slow-log
        code paths must contribute zero counters and leave results and
        QueryStats exactly as a fully-telemetered run produces them."""
        queries = [
            "(?x, p0, ?y)", "(?x, p0+, ?y)", "(?x, (p0|p1)+, ?y)",
            "(n0, p0/p1*, ?y)",
        ]
        engine = kg_index.engine
        for query in queries:
            engine.evaluate(query)  # warm the prepare cache
            plain = engine.evaluate(query)
            assert engine.metrics is NULL_METRICS
            assert kg_index.ring.obs is NULL_METRICS
            full = engine.evaluate(
                query, metrics=Metrics(trace_capacity=1_000,
                                       span_capacity=100_000)
            )
            assert plain.pairs == full.pairs, query
            plain_stats = dataclasses.asdict(plain.stats)
            full_stats = dataclasses.asdict(full.stats)
            # wall-clock is the only legitimately different field
            plain_stats.pop("elapsed")
            full_stats.pop("elapsed")
            assert plain_stats == full_stats, query

    def test_null_metrics_untouched_by_engine_run(self, kg_index):
        kg_index.engine.evaluate("(?x, p0+, ?y)")
        n = NULL_METRICS
        assert n.counters == {} and n.phase_seconds == {}
        assert n.histograms == {} and n.spans is None
        assert list(n.trace_events()) == []


# ----------------------------------------------------------------------
# Class-swap instrumentation
# ----------------------------------------------------------------------


class TestInstrumentation:
    def test_bitvector_counts_and_restores(self):
        bv = BitVector([1, 0, 1, 1, 0, 1])
        m = Metrics()
        with instrument_bitvector(bv, m):
            assert type(bv) is CountingBitVector
            bv.rank1(4)
            bv.rank0(4)  # delegates to rank1: counts one more rank
            bv.select1(2)
            bv.select0(1)
        assert type(bv) is BitVector
        assert m.count("bitvector.rank") == 2
        assert m.count("bitvector.select") == 2

    def test_matrix_counts_and_restores(self):
        wm = WaveletMatrix([3, 1, 4, 1, 5, 2, 0, 5], 6)
        plain = list(wm.range_distinct(0, 8))
        m = Metrics()
        with instrument_matrix(wm, m):
            assert type(wm) is CountingWaveletMatrix
            assert list(wm.range_distinct(0, 8)) == plain
            wm.rank(1, 5)
            wm.rank_pair(5, 0, 8)
        assert type(wm) is WaveletMatrix
        assert all(type(bv) is BitVector for bv in wm._levels)
        assert m.count("wavelet.range_distinct") == 1
        assert m.count("wavelet.rank") == 1
        assert m.count("wavelet.rank_pair") == 1
        assert m.count("wavelet.node") > 0

    def test_second_registry_is_rejected(self):
        wm = WaveletMatrix([0, 1], 2)
        other = WaveletMatrix([1, 0], 2)
        with instrument_matrix(wm, Metrics()):
            with pytest.raises(RuntimeError):
                with instrument_matrix(other, Metrics()):
                    pass  # pragma: no cover
        # and the failed claim must not have poisoned the sink
        assert CountingWaveletMatrix._obs is NULL_METRICS

    def test_nesting_same_registry_is_fine(self):
        wm = WaveletMatrix([0, 1, 1], 2)
        m = Metrics()
        with instrument_matrix(wm, m):
            with instrument_matrix(wm, m):
                wm.rank(1, 3)
            # inner exit must not disconnect the outer instrumentation
            wm.rank(0, 3)
        assert m.count("wavelet.rank") == 2
        assert CountingWaveletMatrix._obs is NULL_METRICS

    def test_ring_wrapper_counts_and_restores(self, small_index):
        ring = small_index.ring
        m = Metrics()
        b, e = ring.full_range()
        with instrument_ring(ring, m):
            ring.backward_step(b, e, 1)
        assert "backward_step" not in ring.__dict__
        assert m.count("ring.backward_step") == 1

    def test_instrument_index_restores_everything(self, small_index):
        ring = small_index.ring
        with instrument_index(small_index, Metrics()):
            assert type(ring.L_p) is CountingWaveletMatrix
            assert type(ring.L_s) is CountingWaveletMatrix
        assert type(ring.L_p) is WaveletMatrix
        assert type(ring.L_s) is WaveletMatrix
        assert "backward_step" not in ring.__dict__
        assert CountingWaveletMatrix._obs is NULL_METRICS
        assert CountingBitVector._obs is NULL_METRICS


# ----------------------------------------------------------------------
# profile_query / ProfileReport
# ----------------------------------------------------------------------


class TestProfileQuery:
    @pytest.mark.parametrize("query,shape", [
        ("(?x, (p0|p1)+, ?y)", "vv"),   # v-to-v
        ("(?x, p0+, n0)", "vc"),        # c-to-v
    ])
    def test_nonzero_consistent_phase_counters(self, kg_index, query,
                                               shape):
        report = profile_query(kg_index, query, trace_capacity=500)
        assert report.shape == shape
        stats = report.stats
        assert len(report.result) > 0
        assert stats.lp_nodes > 0 and stats.lp_pruned > 0
        assert stats.backward_steps > 0
        _assert_bucket_invariants(stats, query)
        # the inlined descents account their rank work arithmetically
        assert stats.operation_counts()["rank_ops"] == \
            stats.lp_children + stats.ls_children > 0
        # phase timers measured for the engine phases that ran
        assert report.metrics.phase_seconds["total"] > 0.0
        breakdown = report.breakdown()
        assert set(breakdown) == set(ENGINE_PHASES)
        assert breakdown["predicates_from_objects"]["nodes_visited"] == \
            stats.lp_nodes
        assert breakdown["subjects_from_predicates"]["nodes_pruned"] == \
            stats.ls_pruned

    def test_fast_path_hits_method_level_counters(self, kg_index):
        """The §5 fast paths go through the succinct structures' method
        APIs, so the class-swap instrumentation sees their rank/select
        and backward-step calls directly."""
        report = profile_query(kg_index, "(?x, p0, ?y)")
        assert len(report.result) > 0
        assert report.metrics.count("ring.backward_step") > 0
        assert report.metrics.count("wavelet.range_distinct") > 0
        assert report.metrics.count("bitvector.rank") > 0
        assert report.stats.backward_steps > 0

    def test_format_table_and_json(self, kg_index):
        report = profile_query(
            kg_index, "(?x, p0+, ?y)", trace_capacity=50
        )
        table = report.format_table()
        for phase in ENGINE_PHASES:
            assert phase in table
        assert "storage ops" in table
        dump = json.loads(report.to_json())
        assert dump["query"] == "(?x, p0+, ?y)"
        assert dump["operation_counts"]["backward_steps"] > 0
        assert len(dump["trace"]) > 0
        kinds = {event["kind"] for event in dump["trace"]}
        assert "query" in kinds or "step" in kinds

    def test_accumulating_registry(self, small_index):
        m = Metrics()
        profile_query(small_index, "(?x, p0, ?y)", metrics=m)
        profile_query(small_index, "(?x, p1, ?y)", metrics=m)
        assert m.count("engine.queries") == 2


# ----------------------------------------------------------------------
# _Budget.tick regression
# ----------------------------------------------------------------------


class TestBudgetTick:
    def test_expired_budget_raises_within_one_window(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_TICK_EVERY", 4)
        budget = _Budget(timeout=0.0)
        with pytest.raises(QueryTimeoutError):
            for _ in range(4):
                budget.tick()

    def test_unlimited_budget_never_raises(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_TICK_EVERY", 1)
        budget = _Budget(timeout=None)
        for _ in range(100):
            budget.tick()

    def test_timeout_error_carries_elapsed_and_budget(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_TICK_EVERY", 1)
        budget = _Budget(timeout=0.0)
        with pytest.raises(QueryTimeoutError) as info:
            budget.tick()
        assert info.value.budget == 0.0
        assert info.value.elapsed >= 0.0

    def test_default_cadence_enforces_timeout(self, kg_index):
        """With the *default* ``_TICK_EVERY``, a query whose budget is
        already spent must still notice: the tick throttles compound
        (one tick per 256 pops, one clock read per ``_TICK_EVERY``
        ticks), and an overlarge constant silently disables timeouts
        for every query smaller than the combined window."""
        engine = RingRPQEngine(kg_index, fast_paths=False)
        result = engine.evaluate("(?x, (p0|p1|p2)+, ?y)", timeout=0.0)
        assert result.stats.timed_out

    def test_partial_stats_carry_counters_on_timeout(self, kg_index,
                                                     monkeypatch):
        """An expired evaluation must return (not raise) with
        ``timed_out`` set and the phase counters accumulated up to the
        deadline — the profile of a timed-out query is exactly what one
        needs to see to understand the timeout."""
        monkeypatch.setattr(engine_mod, "_TICK_EVERY", 64)
        engine = RingRPQEngine(kg_index, fast_paths=False)
        result = engine.evaluate("(?x, (p0|p1)+, ?y)", timeout=0.0)
        stats = result.stats
        assert stats.timed_out
        assert not stats.truncated
        counts = stats.operation_counts()
        assert sum(counts.values()) > 0
        _assert_bucket_invariants(stats, "(?x, (p0|p1)+, ?y)")
