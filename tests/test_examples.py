"""Smoke tests: every example script must run end to end."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, name: str, argv: list[str]):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py", [])
    assert "Baq → SA" in out or "Baq  → SA" in out.replace("  ", " ")
    assert "Metro reachability" in out


def test_transport_network(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "transport_network.py",
        ["--lines", "2", "--stations", "5", "--bus", "6"],
    )
    assert "stations reachable" in out
    assert "impossible" not in out.split("out-and-back")[0]


def test_knowledge_graph(monkeypatch, capsys):
    # shrink the graph through the module's constants? the script is
    # parameterless, so just run it (it is sized for ~2s).
    out = run_example(monkeypatch, capsys, "knowledge_graph.py", [])
    assert "all engines agree" in out


def test_advanced_features(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "advanced_features.py", [])
    assert "leapfrog join" in out
    assert "answers identical" in out


def test_chrome_trace(monkeypatch, capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    out = run_example(
        monkeypatch, capsys, "chrome_trace.py",
        ["--out", str(trace_path)],
    )
    assert "latency histogram" in out
    assert "slow-query log" in out
    assert "wrote Chrome trace" in out
    import json

    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]
    assert all(e["ph"] == "X" for e in trace["traceEvents"])


@pytest.mark.slow
def test_query_log_analysis(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "query_log_analysis.py",
        ["--scale", "0.01", "--timeout", "1.0"],
    )
    assert "pattern mix" in out
    assert "mean time per pattern" in out


@pytest.mark.concurrency
def test_live_telemetry(monkeypatch, capsys, tmp_path):
    stacks_path = tmp_path / "stacks.collapsed"
    out = run_example(
        monkeypatch, capsys, "live_telemetry.py",
        ["--queries", "20", "--out", str(stacks_path)],
    )
    assert "/healthz ok" in out
    assert "/metrics ok" in out
    assert "/debug/vars ok" in out
    assert "all checks passed" in out
    # The collapsed-stacks artifact exists (may be empty on a very
    # fast run where no sampler tick caught an engine frame).
    assert stacks_path.exists()
