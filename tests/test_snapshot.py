"""The shared-memory / mmap snapshot plane (``ring-snapshot/v1``).

The contract under test: a snapshot *attach* reconstructs views — not
copies — of the ring, its wavelet-matrix columns and the sparse
backend's CSR matrices, and an engine over the attached index is
bit-identical (pairs AND operation counters) to one over the built
index.  Segment lifecycle: created once, attachable many times,
fully released (no dangling ``/dev/shm`` entry) after ``close()``.
"""

from __future__ import annotations

import gc
import pickle

import numpy as np
import pytest

from repro.core.engine import RingRPQEngine
from repro.errors import ConstructionError
from repro.ring.snapshot import (
    SNAPSHOT_FORMAT,
    SharedIndexHandle,
    attach_index,
    attach_token,
    load_snapshot,
    save_snapshot,
    snapshot_index,
)
from repro.serve.keys import index_fingerprint
from repro.succinct.bitvector import BitVector

WORKLOAD = [
    "(?x, p0, ?y)",
    "(?x, p0/p1, ?y)",
    "(?x, (p0|p1)*, ?y)",
    "(?x, ^p0/p1+, ?y)",
    "(?x, p2?/p3, ?y)",
]


def _fingerprints(index, queries=WORKLOAD):
    """Bit-identity probe: (pairs, counters) per query, fresh engine."""
    engine = RingRPQEngine(index, prepare_cache_size=0)
    out = []
    for query in queries:
        result = engine.evaluate(query, timeout=60)
        out.append((sorted(result.pairs),
                    result.stats.operation_counts()))
    return out


class TestManifest:
    def test_manifest_shape(self, kg_index):
        manifest, buffers = snapshot_index(kg_index)
        assert manifest["format"] == SNAPSHOT_FORMAT
        assert manifest["fingerprint"] == index_fingerprint(kg_index)
        assert manifest["n"] == len(kg_index.ring)
        assert set(manifest["buffers"]) == set(buffers)
        for name, meta in manifest["buffers"].items():
            assert meta["offset"] % 64 == 0, name
            arr = buffers[name]
            assert np.dtype(meta["dtype"]) == arr.dtype
            assert tuple(meta["shape"]) == arr.shape
        assert manifest["total_bytes"] >= max(
            m["offset"] for m in manifest["buffers"].values()
        )

    def test_buffers_are_views_not_copies(self, kg_index):
        """Flattening reuses the index's own arrays (the single copy
        happens at segment/file write time, not here)."""
        manifest, buffers = snapshot_index(kg_index)
        words_ext, _, _ = kg_index.ring.L_p._levels[0].batch_data()
        assert buffers["lp.level0.words"] is words_ext

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b"NOTASNAP" + b"\0" * 64)
        with pytest.raises(ConstructionError, match="bad magic"):
            load_snapshot(path)

    def test_bad_format_rejected(self, kg_index):
        manifest, buffers = snapshot_index(kg_index)
        manifest = dict(manifest, format="ring-snapshot/v999")
        with pytest.raises(ConstructionError, match="unsupported"):
            attach_index(manifest, b"")


class TestSharedMemoryPlane:
    def test_attach_is_bit_identical(self, kg_index):
        expected = _fingerprints(kg_index)
        with SharedIndexHandle.create(kg_index) as handle:
            token = pickle.loads(pickle.dumps(handle.token()))
            attached = attach_token(token)
            assert _fingerprints(attached) == expected
            assert index_fingerprint(attached) == index_fingerprint(
                kg_index
            )

    def test_matrices_attach_when_present(self, kg_index):
        pytest.importorskip("scipy")
        from repro.matrix.matrices import PredicateMatrices

        store = PredicateMatrices.from_index(kg_index)
        with SharedIndexHandle.create(kg_index) as handle:
            attached = attach_token(handle.token())
            view_store = attached._matrix_store
            assert view_store.predicates == store.predicates
            for pid in store.predicates:
                a = store.matrix(pid)
                b = view_store.matrix(pid)
                assert (a != b).nnz == 0, pid

    def test_segment_released_on_close(self, kg_index):
        handle = SharedIndexHandle.create(kg_index)
        name = handle.name
        assert handle.nbytes > 0
        seg = _dev_shm(name)
        if seg is not None:  # Linux: the segment is a /dev/shm file
            assert seg.exists()
        handle.close()
        handle.close()  # idempotent
        if seg is not None:
            assert not seg.exists(), "segment leaked after close()"

    def test_no_dangling_segments_across_lifecycle(self, kg_index):
        """Leak check: repeated create/attach/close cycles leave the
        shared-memory namespace exactly as they found it."""
        before = _segment_names()
        for _ in range(3):
            handle = SharedIndexHandle.create(kg_index)
            attached = attach_token(handle.token())
            _fingerprints(attached, WORKLOAD[:1])
            del attached
            gc.collect()
            handle.close()
        assert _segment_names() == before

    def test_local_attach(self, kg_index):
        expected = _fingerprints(kg_index, WORKLOAD[:2])
        handle = SharedIndexHandle.create(kg_index)
        try:
            local = handle.attach_local()
            assert _fingerprints(local, WORKLOAD[:2]) == expected
        finally:
            del local
            gc.collect()
            handle.close()


class TestFilePlane:
    def test_mmap_roundtrip(self, kg_index, tmp_path):
        path = tmp_path / "index.snap"
        written = save_snapshot(kg_index, path)
        assert written == path.stat().st_size
        loaded = load_snapshot(path, mmap=True)
        assert _fingerprints(loaded) == _fingerprints(kg_index)
        assert index_fingerprint(loaded) == index_fingerprint(kg_index)

    def test_read_roundtrip(self, kg_index, tmp_path):
        path = tmp_path / "index.snap"
        save_snapshot(kg_index, path)
        loaded = load_snapshot(path, mmap=False)
        assert _fingerprints(loaded) == _fingerprints(kg_index)

    def test_ring_only_snapshot(self, kg_index, tmp_path):
        path = tmp_path / "ring_only.snap"
        save_snapshot(kg_index, path, include_matrices=False)
        loaded = load_snapshot(path)
        assert not hasattr(loaded, "_matrix_store")
        assert _fingerprints(loaded, WORKLOAD[:2]) == _fingerprints(
            kg_index, WORKLOAD[:2]
        )


class TestViewConstruction:
    def test_bitvector_view_parity(self, kg_index):
        bv = kg_index.ring.L_p._levels[0]
        words_ext, cum64, n = bv.batch_data()
        view = BitVector.from_packed(words_ext, cum64, n)
        assert len(view) == len(bv)
        assert view.num_ones == bv.num_ones
        positions = np.arange(0, n + 1, dtype=np.int64)
        assert np.array_equal(
            view.rank1_many(positions), bv.rank1_many(positions)
        )
        step = max(1, n // 64)
        for i in range(0, n, step):
            assert view[i] == bv[i]
            assert view.rank1(i) == bv.rank1(i)
        for j in range(0, view.num_ones, max(1, view.num_ones // 32)):
            assert view.select1(j) == bv.select1(j)

    def test_bitvector_view_sentinel_invariant(self):
        from repro.errors import InvariantViolation

        with pytest.raises(InvariantViolation):
            BitVector.from_packed(
                np.zeros(2, dtype=np.uint64),
                np.zeros(3, dtype=np.int64),
                64,
            )

    def test_wavelet_level_count_validated(self, kg_index):
        from repro.succinct.wavelet_matrix import WaveletMatrix

        wm = kg_index.ring.L_p
        with pytest.raises(ConstructionError, match="levels"):
            WaveletMatrix.from_parts(
                wm._levels[:1] * (wm.height + 1),
                len(wm), wm.sigma, wm._counts, wm._class_cum,
                wm._bottom_start,
            )


def _dev_shm(name: str):
    from pathlib import Path

    root = Path("/dev/shm")
    return root / name if root.is_dir() else None


def _segment_names() -> set:
    from pathlib import Path

    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in root.glob("psm_*")}
