"""Property tests for the NDJSON page framing.

The framing helpers in :mod:`repro.serve.http` are pure functions, so
the streaming invariant can be checked exhaustively without a socket:
for *any* result set, *any* page size, and *any* starting cursor, the
framed records reassemble to exactly the sorted pair suffix — and a
client that resumes mid-stream with different page sizes per fetch
stitches together the identical list.  Every record round-trips
through real JSON, because the wire does.
"""

from __future__ import annotations

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.serve.http import (  # noqa: E402
    clamp_page_size,
    frame_records,
    iter_pages,
    reassemble_pages,
    DEFAULT_PAGE_SIZE,
    MAX_PAGE_SIZE,
)

pytestmark = [pytest.mark.http, pytest.mark.hypothesis]

_STATS = {"elapsed_seconds": 0.0, "timed_out": False,
          "truncated": False, "cancelled": False, "cached": False}

_pair = st.tuples(st.text(max_size=8), st.text(max_size=8))
_pairs = st.lists(_pair, max_size=120, unique=True)


def _wire(records):
    """Round-trip each record through real JSON, like the socket."""
    return [json.loads(json.dumps(record)) for record in records]


class TestFraming:
    @settings(max_examples=120, deadline=None)
    @given(pairs=_pairs, page_size=st.integers(1, 40),
           cursor=st.integers(0, 140))
    def test_any_split_reassembles_exactly(self, pairs, page_size,
                                           cursor):
        spairs = sorted(pairs)
        records = _wire(frame_records(
            "q1", "(?x, p, ?y)", spairs, _STATS,
            cursor=cursor, page_size=page_size,
        ))
        assert reassemble_pages(records) == spairs[cursor:]
        # Page bounds hold for every page record.
        for record in records[1:-1]:
            assert 1 <= record["count"] <= page_size

    @settings(max_examples=80, deadline=None)
    @given(n=st.integers(0, 150), data=st.data())
    def test_cursor_resume_stitches_identically(self, n, data):
        spairs = sorted((f"s{i:03d}", f"o{i:03d}") for i in range(n))
        collected: list = []
        at = 0
        while True:
            page_size = data.draw(st.integers(1, 17), label="page_size")
            records = _wire(frame_records(
                "q1", "(?x, p, ?y)", spairs, _STATS,
                cursor=at, page_size=page_size,
            ))
            pages = records[1:-1]
            if not pages:
                break
            # A real client may stop after any number of pages of a
            # fetch and resume from the last next_cursor it saw.
            take = data.draw(
                st.integers(1, len(pages)), label="pages_taken"
            )
            for record in pages[:take]:
                collected.extend(tuple(p) for p in record["pairs"])
            nxt = pages[take - 1]["next_cursor"]
            if nxt is None:
                break
            at = nxt
        assert collected == spairs

    @settings(max_examples=60, deadline=None)
    @given(pairs=_pairs, page_size=st.integers(1, 40))
    def test_iter_pages_partitions_without_overlap(self, pairs,
                                                   page_size):
        spairs = sorted(pairs)
        seen: list = []
        last_next = 0
        for at, page, nxt in iter_pages(spairs, 0, page_size):
            assert at == last_next
            assert 1 <= len(page) <= page_size
            seen.extend(page)
            last_next = at + len(page)
            if nxt is not None:
                assert nxt == last_next
        assert seen == spairs


class TestPageSizeClamp:
    def test_default_and_cap(self):
        assert clamp_page_size(None) == DEFAULT_PAGE_SIZE
        assert clamp_page_size(5) == 5
        assert clamp_page_size(MAX_PAGE_SIZE * 3) == MAX_PAGE_SIZE
        with pytest.raises(ValueError):
            clamp_page_size(0)

    def test_trailer_counts_pages(self):
        records = frame_records("q", "(?x, p, ?y)",
                                [("a", "b")] * 0, _STATS)
        assert records[-1]["pages"] == 0
        records = frame_records(
            "q", "(?x, p, ?y)",
            sorted((str(i), str(i)) for i in range(10)),
            _STATS, page_size=3,
        )
        assert records[-1]["pages"] == 4
