"""Tests for the regex AST and parser."""

from __future__ import annotations

import pytest

from repro.automata.parser import parse_regex
from repro.automata.syntax import (
    Concat,
    Epsilon,
    NegatedClass,
    Optional,
    Plus,
    Star,
    Symbol,
    Union,
    concat,
    union,
)
from repro.errors import RegexSyntaxError


class TestParser:
    def test_atom(self):
        assert parse_regex("p") == Symbol("p")

    def test_iri_atom(self):
        assert parse_regex("<http://x/p>") == Symbol("http://x/p")

    def test_concat_and_union_precedence(self):
        ast = parse_regex("a/b|c")
        assert isinstance(ast, Union)
        assert ast.children[0] == Concat((Symbol("a"), Symbol("b")))
        assert ast.children[1] == Symbol("c")

    def test_postfix_binding(self):
        ast = parse_regex("a/b*")
        assert ast == Concat((Symbol("a"), Star(Symbol("b"))))

    def test_postfix_stacking(self):
        ast = parse_regex("a*?")
        assert ast == Optional(Star(Symbol("a")))

    def test_plus_and_optional(self):
        assert parse_regex("a+") == Plus(Symbol("a"))
        assert parse_regex("a?") == Optional(Symbol("a"))

    def test_group(self):
        ast = parse_regex("(a|b)*")
        assert isinstance(ast, Star)
        assert isinstance(ast.child, Union)

    def test_inverse_atom(self):
        assert parse_regex("^p") == Symbol("^p")
        assert parse_regex("^^p") == Symbol("p")

    def test_inverse_distributes(self):
        assert str(parse_regex("^(a/b)")) == "^b/^a"
        assert str(parse_regex("^(a|b)")) == "^a|^b"
        assert str(parse_regex("^(a*)")) == "^a*"

    def test_epsilon(self):
        assert parse_regex("ε") == Epsilon()

    def test_negated_class_forward(self):
        ast = parse_regex("!(a|b)")
        assert ast == NegatedClass(frozenset({"a", "b"}), inverse=False)

    def test_negated_class_mixed(self):
        ast = parse_regex("!(a|^b)")
        assert isinstance(ast, Union)
        kinds = {(c.inverse, tuple(sorted(c.excluded)))
                 for c in ast.children}
        assert kinds == {(False, ("a",)), (True, ("b",))}

    def test_whitespace_tolerated(self):
        assert parse_regex(" a / b ") == parse_regex("a/b")

    @pytest.mark.parametrize(
        "bad",
        ["", "  ", "a/", "|a", "a|", "(a", "a)", "*", "a//b", "!(", "!()",
         "^", "a $ b"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(RegexSyntaxError):
            parse_regex(bad)

    @pytest.mark.parametrize(
        "source",
        ["a", "a/b", "a|b|c", "(a/b)*", "a+/b?", "^a/(b|^c)+",
         "!(a|b)/c*", "a/b/c/d", "((a))"],
    )
    def test_roundtrip(self, source):
        ast = parse_regex(source)
        assert parse_regex(str(ast)) == ast


class TestAst:
    def test_reverse_involution(self):
        for source in ["a/b", "(a|b)+", "^a/b*", "!(x)/y?"]:
            ast = parse_regex(source)
            assert ast.reverse().reverse() == ast

    def test_num_positions(self):
        assert parse_regex("a/b*/c|d").num_positions() == 4
        assert Epsilon().num_positions() == 0

    def test_atoms_in_order(self):
        ast = parse_regex("a/(b|c)*/d")
        assert [str(x) for x in ast.atoms()] == ["a", "b", "c", "d"]

    def test_length_range(self):
        assert parse_regex("a/b").length_range() == (2, 2)
        assert parse_regex("a*").length_range() == (0, None)
        assert parse_regex("a+").length_range() == (1, None)
        assert parse_regex("a?").length_range() == (0, 1)
        assert parse_regex("a|b/c").length_range() == (1, 2)

    def test_is_fixed_length(self):
        assert parse_regex("a/b").is_fixed_length()
        assert not parse_regex("a?").is_fixed_length()
        assert not parse_regex("a*").is_fixed_length()

    def test_smart_constructors(self):
        assert concat(Symbol("a")) == Symbol("a")
        assert concat() == Epsilon()
        assert concat(Epsilon(), Symbol("a")) == Symbol("a")
        flat = concat(Concat((Symbol("a"), Symbol("b"))), Symbol("c"))
        assert flat == Concat((Symbol("a"), Symbol("b"), Symbol("c")))
        assert union(Symbol("a")) == Symbol("a")
        flat_u = union(Union((Symbol("a"), Symbol("b"))), Symbol("c"))
        assert flat_u == Union((Symbol("a"), Symbol("b"), Symbol("c")))

    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            Concat((Symbol("a"),))
        with pytest.raises(ValueError):
            Union((Symbol("a"),))

    def test_str_parenthesisation(self):
        assert str(parse_regex("(a|b)/c")) == "(a|b)/c"
        assert str(parse_regex("(a/b)*")) == "(a/b)*"
        assert str(parse_regex("a/b/c")) == "a/b/c"

    def test_negated_class_reverse(self):
        fwd = NegatedClass(frozenset({"a"}), inverse=False)
        assert fwd.reverse() == NegatedClass(frozenset({"a"}), inverse=True)
        assert fwd.reverse().reverse() == fwd
