"""Tests for the hierarchical span stack and its Chrome-trace export."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.spans import Span, SpanStack


class TestRecording:
    def test_parent_child_depth(self):
        stack = SpanStack()
        outer = stack.start("outer")
        inner = stack.start("inner")
        assert inner.parent is outer
        assert (outer.depth, inner.depth) == (0, 1)
        stack.end(inner)
        stack.end(outer)
        assert len(stack) == 2
        assert stack.max_depth() == 1

    def test_start_order_reported(self):
        stack = SpanStack()
        a = stack.start("a")
        b = stack.start("b")
        stack.end(b)
        c = stack.start("c")
        stack.end(c)
        stack.end(a)
        # internally end-ordered (b, c, a); reported in start order
        assert [s.name for s in stack.ordered()] == ["a", "b", "c"]

    def test_duration_non_negative_and_monotonic(self):
        stack = SpanStack()
        with stack.span("outer") as outer:
            with stack.span("inner") as inner:
                pass
        assert 0.0 <= inner.duration <= outer.duration

    def test_attrs_accumulate(self):
        span = Span(0, "s", None, 0, 0.0)
        span.set(a=1)
        span.set(b=2, a=3)
        assert span.attrs == {"a": 3, "b": 2}

    def test_context_manager_closes_on_exception(self):
        stack = SpanStack()
        with pytest.raises(RuntimeError):
            with stack.span("work"):
                raise RuntimeError("boom")
        assert len(stack) == 1
        assert stack._open == []

    def test_end_unwinds_leaked_children(self):
        """A timeout mid-wave leaves descendants open; ending the
        ancestor must close them all with a consistent end time."""
        stack = SpanStack()
        query = stack.start("query")
        wave = stack.start("wave")
        step = stack.start("step")
        stack.end(query)  # wave and step never explicitly ended
        assert len(stack) == 3
        assert stack._open == []
        by_name = {s.name: s for s in stack.spans}
        assert by_name["step"].t1 == by_name["wave"].t1 == \
            by_name["query"].t1
        assert step.t1 >= step.t0 and wave.t1 >= wave.t0

    def test_double_end_counts_as_dropped(self):
        stack = SpanStack()
        span = stack.start("s")
        stack.end(span)
        stack.end(span)
        assert len(stack) == 1
        assert stack.dropped == 1

    def test_reset(self):
        stack = SpanStack()
        stack.end(stack.start("s"))
        stack.reset()
        assert len(stack) == 0 and stack.dropped == 0
        assert stack.start("t").sid == 0


class TestCapacity:
    def test_capacity_bounds_retention(self):
        stack = SpanStack(capacity=5)
        for i in range(20):
            stack.end(stack.start(f"s{i}"))
        assert len(stack) == 5
        assert stack.dropped == 15
        # the earliest spans were kept (retention is first-come)
        assert [s.name for s in stack.ordered()] == \
            [f"s{i}" for i in range(5)]

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=0, max_value=64))
    def test_never_exceeds_capacity(self, capacity, n):
        stack = SpanStack(capacity=capacity)
        for i in range(n):
            stack.end(stack.start("s"))
        assert len(stack) <= capacity
        assert len(stack) + stack.dropped == n


class TestTreeAndExport:
    def _sample(self) -> SpanStack:
        stack = SpanStack()
        query = stack.start("query")
        bind = stack.start("bind")
        bind.set(width=3)
        stack.end(bind)
        anchors = stack.start("anchors")
        wave = stack.start("wave")
        stack.end(wave)
        stack.end(anchors)
        stack.end(query)
        return stack

    def test_tree_nesting(self):
        tree = self._sample().tree()
        assert len(tree) == 1
        root = tree[0]
        assert root["name"] == "query"
        assert [c["name"] for c in root["children"]] == \
            ["bind", "anchors"]
        assert root["children"][0]["attrs"] == {"width": 3}
        assert root["children"][1]["children"][0]["name"] == "wave"

    def test_tree_subtree_filter(self):
        stack = SpanStack()
        first = stack.start("query")
        stack.end(stack.start("wave"))
        stack.end(first)
        second = stack.start("query")
        stack.end(stack.start("wave"))
        stack.end(second)
        subtree = stack.tree(second)
        assert len(subtree) == 1
        assert subtree[0]["name"] == "query"
        assert len(subtree[0]["children"]) == 1
        # the full forest still has both roots
        assert len(stack.tree()) == 2

    def test_format_tree_indents_by_depth(self):
        text = self._sample().format_tree()
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert lines[1].startswith("  bind")
        assert "width=3" in lines[1]
        assert lines[3].startswith("    wave")

    def test_chrome_trace_structure(self):
        trace = self._sample().to_chrome_trace()
        events = trace["traceEvents"]
        assert len(events) == 4
        assert all(e["ph"] == "X" for e in events)
        assert events[0]["name"] == "query"
        assert events[0]["ts"] == 0.0
        # children nest inside the parent's [ts, ts+dur] interval
        root = events[0]
        for child in events[1:]:
            assert child["ts"] >= root["ts"] - 1e-6
            assert child["ts"] + child["dur"] <= \
                root["ts"] + root["dur"] + 1e-6
        assert events[1]["args"] == {"width": 3}

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        self._sample().write_chrome_trace(path)
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == 4

    def test_empty_stack_exports_cleanly(self):
        stack = SpanStack()
        assert stack.tree() == []
        assert stack.max_depth() == -1
        assert stack.format_tree() == ""
        assert stack.to_chrome_trace()["traceEvents"] == []
