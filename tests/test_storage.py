"""Tests for index persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConstructionError
from repro.graph.generators import random_graph
from repro.ring.builder import RingIndex
from repro.ring.storage import load_index, save_index


@pytest.fixture(scope="module")
def index():
    graph = random_graph(n_nodes=25, n_edges=90, n_predicates=4, seed=17)
    return RingIndex.from_graph(graph), graph


class TestRoundtrip:
    def test_triples_survive(self, index, tmp_path):
        original, graph = index
        path = tmp_path / "graph.ring.npz"
        save_index(original, path)
        restored = load_index(path)
        assert sorted(restored.ring.iter_triples()) == \
            sorted(original.ring.iter_triples())
        assert restored.dictionary.node_labels == \
            original.dictionary.node_labels
        assert restored.dictionary.predicate_labels == \
            original.dictionary.predicate_labels

    def test_queries_survive(self, index, tmp_path):
        original, graph = index
        path = tmp_path / "graph.ring.npz"
        save_index(original, path)
        restored = load_index(path)
        for query in ["(?x, p0+, ?y)", "(?x, p1/p2*, ?y)",
                      "(n1, (p0|p3)*, ?y)"]:
            assert restored.evaluate(query).pairs == \
                original.evaluate(query).pairs, query

    def test_with_object_column(self, tmp_path):
        graph = random_graph(n_nodes=10, n_edges=30, n_predicates=2,
                             seed=3)
        original = RingIndex.from_graph(graph, keep_object_column=True)
        path = tmp_path / "with_lo.npz"
        save_index(original, path)
        restored = load_index(path)
        assert restored.ring.L_o is not None
        for i in range(len(restored.ring)):
            assert restored.ring.lf_o(restored.ring.lf_s(
                restored.ring.lf_p(i))) == i

    def test_santiago_paper_layout(self, tmp_path):
        from repro.graph.datasets import (
            SANTIAGO_NODE_ORDER,
            santiago_transport,
        )

        original = RingIndex.from_graph(
            santiago_transport(),
            node_order=SANTIAGO_NODE_ORDER,
            predicate_order=["l1", "l2", "l5", "bus"],
        )
        path = tmp_path / "santiago.npz"
        save_index(original, path)
        restored = load_index(path)
        assert restored.evaluate("(Baq, l5+/bus, ?y)").pairs == {
            ("Baq", "SA"), ("Baq", "UCh")
        }
        # symmetric predicate inverse mapping survives
        d = restored.dictionary
        assert d.inverse_predicate(d.predicate_id("l1")) == \
            d.predicate_id("l1")

    def test_bad_format_rejected(self, index, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        meta = json.dumps({"format": 999})
        np.savez(path, meta_json=np.frombuffer(
            meta.encode(), dtype=np.uint8
        ))
        with pytest.raises(ConstructionError):
            load_index(path)

    def test_empty_graph(self, tmp_path):
        original = RingIndex.from_triples([("a", "p", "b")])
        path = tmp_path / "tiny.npz"
        save_index(original, path)
        restored = load_index(path)
        assert len(restored.ring) == 2
