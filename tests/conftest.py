"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import pytest

try:
    from hypothesis import settings as _hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is an extra
    _hypothesis_settings = None

if _hypothesis_settings is not None:
    # "default" matches the explicit @settings most suites carry;
    # "differential" is the CI cross-backend job's deeper profile
    # (more examples, no deadline so slow shrinks never flake).
    # Select with HYPOTHESIS_PROFILE=differential.
    _hypothesis_settings.register_profile(
        "default", max_examples=40, deadline=None,
    )
    _hypothesis_settings.register_profile(
        "differential", max_examples=200, deadline=None,
    )
    _hypothesis_settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE", "default")
    )

from repro.graph.datasets import (
    SANTIAGO_NODE_ORDER,
    santiago_transport,
)
from repro.graph.generators import random_graph, wikidata_like
from repro.ring.builder import RingIndex


@pytest.fixture(scope="session")
def santiago_graph():
    """The paper's Fig. 1 transport graph."""
    return santiago_transport()


@pytest.fixture(scope="session")
def santiago_index(santiago_graph):
    """Ring index over the Fig. 1 graph with the paper's id order."""
    return RingIndex.from_graph(
        santiago_graph,
        node_order=SANTIAGO_NODE_ORDER,
        predicate_order=["l1", "l2", "l5", "bus"],
    )


@pytest.fixture(scope="session")
def santiago_index_sorted(santiago_graph):
    """Ring index over Fig. 1 with default (sorted) id assignment."""
    return RingIndex.from_graph(santiago_graph)


@pytest.fixture(scope="session")
def small_graph():
    """A small random graph shared by integration tests."""
    return random_graph(n_nodes=20, n_edges=60, n_predicates=4, seed=7)


@pytest.fixture(scope="session")
def small_index(small_graph):
    return RingIndex.from_graph(small_graph)


@pytest.fixture(scope="session")
def kg_graph():
    """A Wikidata-like graph for benchmark-shaped tests."""
    return wikidata_like(
        n_nodes=300, n_edges=1_500, n_predicates=12, seed=3
    )


@pytest.fixture(scope="session")
def kg_index(kg_graph):
    return RingIndex.from_graph(kg_graph)


@pytest.fixture()
def rng():
    return random.Random(0xC0FFEE)
