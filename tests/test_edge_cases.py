"""Edge cases and failure-injection across the stack."""

from __future__ import annotations

import pytest

from repro.core.engine import RingRPQEngine
from repro.errors import (
    QueryTimeoutError,
    RegexSyntaxError,
    ReproError,
    ResultLimitExceeded,
    UnknownSymbolError,
)
from repro.graph.model import Graph
from repro.ring.builder import RingIndex
from repro.ring.ring import BoundaryArray, Ring

import numpy as np


class TestErrors:
    def test_hierarchy(self):
        for exc in (RegexSyntaxError, UnknownSymbolError,
                    QueryTimeoutError, ResultLimitExceeded):
            assert issubclass(exc, ReproError)

    def test_messages(self):
        err = QueryTimeoutError(1.5, 1.0)
        assert "1.5" in str(err)
        assert err.budget == 1.0
        err2 = ResultLimitExceeded(100)
        assert err2.limit == 100
        err3 = UnknownSymbolError("node", "x")
        assert err3.kind == "node"
        err4 = RegexSyntaxError("bad", position=3)
        assert err4.position == 3 and "position 3" in str(err4)


class TestTinyGraphs:
    def test_single_edge(self):
        index = RingIndex.from_triples([("a", "p", "b")])
        assert index.evaluate("(?x, p, ?y)").pairs == {("a", "b")}
        assert index.evaluate("(?x, ^p, ?y)").pairs == {("b", "a")}
        assert index.evaluate("(a, p*, ?y)").pairs == {
            ("a", "a"), ("a", "b")
        }

    def test_self_loop(self):
        index = RingIndex.from_triples([("a", "p", "a")])
        assert index.evaluate("(?x, p+, ?y)").pairs == {("a", "a")}
        assert index.evaluate("(a, p/p/p, a)").pairs == {("a", "a")}

    def test_two_node_cycle_plus(self):
        index = RingIndex.from_triples([
            ("a", "p", "b"), ("b", "p", "a")
        ])
        nodes = {"a", "b"}
        assert index.evaluate("(?x, p+, ?y)").pairs == {
            (x, y) for x in nodes for y in nodes
        }

    def test_disconnected_components(self):
        index = RingIndex.from_triples([
            ("a", "p", "b"), ("c", "p", "d")
        ])
        result = index.evaluate("(?x, p+, ?y)")
        assert result.pairs == {("a", "b"), ("c", "d")}

    def test_multi_predicate_parallel_edges(self):
        index = RingIndex.from_triples([
            ("a", "p", "b"), ("a", "q", "b")
        ])
        assert index.evaluate("(?x, p|q, ?y)").pairs == {("a", "b")}
        assert index.evaluate("(?x, p/^q, ?y)").pairs == {("a", "a")}


class TestDeepRecursion:
    def test_long_chain_star(self):
        from repro.graph.generators import chain_graph

        index = RingIndex.from_graph(chain_graph(300))
        result = index.evaluate("(n0, next+, ?y)")
        assert len(result) == 300

    def test_large_union_automaton(self):
        triples = [(f"a{i}", f"p{i}", f"b{i}") for i in range(24)]
        index = RingIndex.from_graph(Graph(triples))
        expr = "|".join(f"p{i}" for i in range(24))
        result = index.evaluate(f"(?x, {expr}, ?y)")
        assert len(result) == 24
        # m = 24 positions -> chunked tables must still work
        slow = RingRPQEngine(index, fast_paths=False)
        assert slow.evaluate(f"(?x, {expr}, ?y)").pairs == result.pairs

    def test_deep_concat_automaton(self):
        from repro.graph.generators import chain_graph

        index = RingIndex.from_graph(chain_graph(40))
        expr = "/".join(["next"] * 30)
        result = index.evaluate(f"(n0, {expr}, ?y)")
        assert result.pairs == {("n0", "n30")}


class TestBoundaryArray:
    def test_plain_vs_compressed_agree(self):
        values = np.array([0, 0, 3, 3, 7, 10], dtype=np.int64)
        plain = BoundaryArray(values, compressed=False)
        packed = BoundaryArray(values, compressed=True)
        assert len(plain) == len(packed) == 6
        for i in range(6):
            assert plain[i] == packed[i]
        for pos in range(-1, 12):
            assert plain.bracket(pos) == packed.bracket(pos), pos
        assert plain.to_array().tolist() == packed.to_array().tolist()
        assert packed.is_compressed and not plain.is_compressed
        assert plain.fast_list() == values.tolist()
        assert packed.fast_list() is None

    def test_compressed_ring_matches_plain(self):
        triples = [(0, 0, 1), (1, 1, 0), (1, 0, 2), (2, 1, 1)]
        plain = Ring(triples, 3, 2)
        packed = Ring(triples, 3, 2, compressed_boundaries=True)
        assert sorted(plain.iter_triples()) == sorted(packed.iter_triples())
        for o in range(3):
            assert plain.object_range(o) == packed.object_range(o)
        assert packed.size_in_bits() > 0


class TestTimeoutInjection:
    def test_engine_partial_on_timeout(self):
        from repro.graph.generators import chain_graph

        index = RingIndex.from_graph(chain_graph(500))
        result = index.evaluate("(?x, next*, ?y)", timeout=0.005)
        # either finished very fast or flagged; never raises
        assert isinstance(result.pairs, set)
        if result.stats.timed_out:
            assert result.stats.elapsed >= 0.005

    def test_stats_elapsed_monotone(self):
        index = RingIndex.from_triples([("a", "p", "b")])
        r1 = index.evaluate("(?x, p, ?y)")
        assert r1.stats.elapsed >= 0
