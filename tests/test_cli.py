"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph.generators import chain_graph
from repro.graph.io import save_graph


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "chain.nt"
    save_graph(chain_graph(4), path)
    return str(path)


class TestQuery:
    def test_query_outputs_pairs(self, graph_file, capsys):
        rc = main(["query", graph_file, "(n0, next+, ?y)"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n0\tn1" in out
        assert "n0\tn4" in out

    def test_query_with_baseline_engine(self, graph_file, capsys):
        rc = main([
            "query", graph_file, "(n0, next+, ?y)",
            "--engine", "alp-jena",
        ])
        assert rc == 0
        assert "n0\tn4" in capsys.readouterr().out

    def test_query_limit(self, graph_file, capsys):
        main(["query", graph_file, "(?x, next*, ?y)", "--limit", "2"])
        out = capsys.readouterr()
        assert len(out.out.strip().splitlines()) == 2
        assert "TRUNCATED" in out.err


class TestProfile:
    def test_profile_prints_phase_table(self, graph_file, capsys):
        rc = main(["profile", graph_file, "(n0, next+, ?y)"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicates_from_objects" in out
        assert "subjects_from_predicates" in out
        assert "subjects_to_objects" in out
        assert "storage ops" in out

    def test_profile_json(self, graph_file, capsys):
        import json

        rc = main(["profile", graph_file, "(?x, next+, ?y)", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["query"] == "(?x, next+, ?y)"
        assert report["operation_counts"]["storage_ops"] > 0
        assert set(report["phases"]) == {
            "predicates_from_objects",
            "subjects_from_predicates",
            "subjects_to_objects",
        }

    def test_profile_trace_dump(self, graph_file, tmp_path, capsys):
        import json

        trace_file = tmp_path / "trace.json"
        rc = main([
            "profile", graph_file, "(n0, next+, ?y)",
            "--trace", str(trace_file),
        ])
        assert rc == 0
        assert "trace written" in capsys.readouterr().err
        dump = json.loads(trace_file.read_text())
        assert dump["trace"], "trace events must have been retained"
        kinds = {event["kind"] for event in dump["trace"]}
        assert "query" in kinds


class TestMatch:
    def test_match_wildcard(self, graph_file, capsys):
        rc = main(["match", graph_file, "?", "next", "?"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n0\tnext\tn1" in out
        assert len(out.strip().splitlines()) == 4

    def test_match_bound(self, graph_file, capsys):
        rc = main(["match", graph_file, "n1", "?", "?"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n1\tnext\tn2" in out
        assert "n1\t^next\tn0" in out

    def test_match_limit(self, graph_file, capsys):
        main(["match", graph_file, "?", "?", "?", "--limit", "3"])
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3


class TestStats:
    def test_stats(self, graph_file, capsys):
        rc = main(["stats", graph_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nodes            : 5" in out
        assert "bytes/edge" in out


class TestGenerate:
    def test_generate_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "synth.nt"
        rc = main([
            "generate", str(out_path),
            "--nodes", "50", "--edges", "200", "--predicates", "8",
        ])
        assert rc == 0
        assert out_path.exists()
        rc = main(["stats", str(out_path)])
        assert rc == 0


class TestBench:
    def test_table1_via_cli(self, capsys):
        rc = main([
            "bench", "table1",
            "--scale", "0.01", "--nodes", "200", "--edges", "1000",
            "--predicates", "12",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
