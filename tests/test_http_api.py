"""The HTTP front door's API surface: endpoints, streaming, headers.

Every test here drives :class:`~repro.serve.http.HTTPQueryServer`
through a real TCP socket — nothing is called in-process — so what
passes is the wire contract documented in ``docs/http.md``.  Fault
injection lives in ``test_http_faults.py``; corpus-vs-oracle
equivalence in ``test_http_conformance.py``; the page-framing
algebra in ``test_http_paging.py``.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.serve import HTTPQueryServer, QueryService
from repro.serve.http import reassemble_pages
from tests.http_utils import (
    ndjson,
    post_query,
    request,
    served,
    stream_pairs,
    wait_until,
)

pytestmark = pytest.mark.http


class TestSyncQuery:
    def test_streams_header_pages_trailer(self, small_index):
        with served(small_index) as (service, server, _):
            status, headers, records = post_query(
                server, "(?x, p0, ?y)", timeout_ms=10_000, page_size=3
            )
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "header" and kinds[-1] == "trailer"
        assert all(k == "page" for k in kinds[1:-1])
        header, trailer = records[0], records[-1]
        assert header["n_results"] == trailer["n_results"]
        assert all(r["count"] == len(r["pairs"]) <= 3
                   for r in records[1:-1])
        # The framing reassembles to exactly the pair list, in order.
        pairs = reassemble_pages(records)
        assert pairs == sorted(pairs)
        assert len(pairs) == header["n_results"] > 0

    def test_pairs_match_inprocess_service(self, small_index):
        with served(small_index) as (service, server, _):
            expected = sorted(service.evaluate("(?x, p1|p2, ?y)").pairs)
            _, _, records = post_query(server, "(?x, p1|p2, ?y)")
        assert stream_pairs(records) == expected

    def test_audit_headers_echo_lifecycle(self, small_index):
        with served(small_index) as (_, server, _):
            status, headers, records = post_query(server, "(?x, p0, ?y)")
        assert status == 200
        assert headers["X-Query-Id"] == records[0]["query_id"]
        stages = dict(
            part.split("=")
            for part in headers["X-Query-Stages"].split(";")
        )
        # The thread tier's canonical stage names, in timeline order.
        assert "queue_wait" in stages and "execute" in stages
        assert all(float(v) >= 0 for v in stages.values())

    def test_trailer_budget_tags_zero_timeout(self, small_index):
        with served(small_index) as (_, server, _):
            status, _, records = post_query(
                server, "(?x, (p0|p1|p2|p3)+, ?y)", timeout_ms=0
            )
        assert status == 200  # degradation contract: partial, not error
        stats = records[-1]["stats"]
        if stats["timed_out"]:
            assert stats["truncated"]

    def test_limit_is_forwarded(self, small_index):
        with served(small_index) as (_, server, _):
            _, _, records = post_query(server, "(?x, p0, ?y)", limit=2)
        assert records[0]["n_results"] <= 2
        assert records[-1]["stats"]["truncated"] in (True, False)


class TestAsyncLifecycle:
    def test_submit_poll_result_roundtrip(self, small_index):
        with served(small_index) as (_, server, _):
            status, headers, raw = request(
                server, "POST", "/submit",
                {"query": "(?x, p0, ?y)", "timeout_ms": 10_000},
            )
            assert status == 202
            sub = json.loads(raw)
            qid = sub["query_id"]
            assert headers["X-Query-Id"] == qid
            assert sub["result_url"] == f"/result/{qid}"

            def settled():
                code, _, body = request(server, "GET", f"/status/{qid}")
                return code == 200 and json.loads(body)["done"]

            wait_until(settled)
            code, _, body = request(server, "GET", f"/status/{qid}")
            st = json.loads(body)
            assert st["done"] and "stats" in st and "n_results" in st
            code, headers, raw = request(server, "GET", f"/result/{qid}")
            assert code == 200
            records = ndjson(raw)
            assert len(stream_pairs(records)) == st["n_results"]

    def test_result_cursor_resume(self, small_index):
        with served(small_index) as (_, server, _):
            _, _, records = post_query(server, "(?x, p0, ?y)")
            qid = records[0]["query_id"]
            full = stream_pairs(records)
            assert len(full) >= 3
            # Fetch the suffix from an arbitrary cursor, tiny pages.
            code, _, raw = request(
                server, "GET", f"/result/{qid}?cursor=2&page_size=2"
            )
            assert code == 200
            resumed = ndjson(raw)
            assert resumed[0]["cursor"] == 2
            assert stream_pairs(resumed) == full[2:]
            assert all(r["count"] <= 2 for r in resumed[1:-1])

    def test_result_cursor_past_end_is_empty(self, small_index):
        with served(small_index) as (_, server, _):
            _, _, records = post_query(server, "(?x, p0, ?y)")
            qid = records[0]["query_id"]
            n = records[0]["n_results"]
            code, _, raw = request(
                server, "GET", f"/result/{qid}?cursor={n + 10}"
            )
        assert code == 200
        resumed = ndjson(raw)
        assert [r["kind"] for r in resumed] == ["header", "trailer"]

    def test_unknown_query_id_404(self, small_index):
        with served(small_index) as (_, server, _):
            for method, path in (
                ("GET", "/status/zzz"),
                ("GET", "/result/zzz"),
                ("POST", "/cancel/zzz"),
            ):
                code, _, raw = request(server, method, path)
                assert code == 404
                assert json.loads(raw)["error"] == "unknown_query_id"

    def test_cancel_settled_query_reports_done(self, small_index):
        with served(small_index) as (_, server, _):
            _, _, records = post_query(server, "(?x, p0, ?y)")
            qid = records[0]["query_id"]
            code, _, raw = request(server, "POST", f"/cancel/{qid}")
            assert code == 200
            body = json.loads(raw)
            assert body["done"] and not body["cancelled"]
            # DELETE /query/{id} is the same operation.
            code, _, raw = request(server, "DELETE", f"/query/{qid}")
            assert code == 200


class TestOperationalEndpoints:
    def test_healthz_reports_service_load(self, small_index):
        with served(small_index) as (_, server, _):
            code, _, raw = request(server, "GET", "/healthz")
            body = json.loads(raw)
            assert code == 200 and body["status"] == "ok"
            assert body["workers"] == 2
            assert "front_door" in body
            assert body["front_door"]["requests"] >= 1

    def test_flight_ring_visible_over_socket(self, small_index):
        with served(small_index) as (service, server, _):
            _, _, records = post_query(server, "(?x, p0, ?y)")
            qid = records[0]["query_id"]

            def recorded():
                _, _, raw = request(server, "GET", "/debug/flight")
                snap = json.loads(raw)
                return any(r.get("query_id") == qid
                           for r in snap["records"])

            wait_until(recorded)

    def test_index_page_and_unknown_route(self, small_index):
        with served(small_index) as (_, server, _):
            code, headers, raw = request(server, "GET", "/")
            assert code == 200 and b"/query" in raw
            code, _, _ = request(server, "GET", "/nope")
            assert code == 404
            code, _, _ = request(server, "GET", "/query")
            assert code == 405

    def test_keep_alive_pipelines_requests(self, small_index):
        with served(small_index) as (_, server, _):
            conn = http.client.HTTPConnection(server.host, server.port,
                                              timeout=10)
            try:
                for _ in range(3):
                    conn.request(
                        "POST", "/query",
                        body=json.dumps({"query": "(?x, p0, ?y)"}),
                    )
                    resp = conn.getresponse()
                    assert resp.status == 200
                    assert stream_pairs(ndjson(resp.read()))
            finally:
                conn.close()
            # All three rode one connection (peak gauge is per-conn).
            assert server.requests >= 3


class TestServerLifecycle:
    def test_ephemeral_port_and_stats(self, small_index):
        with served(small_index) as (_, server, _):
            assert server.port > 0
            stats = server.stats()
            assert stats["url"] == server.url
            assert stats["retention"] == 64

    def test_stop_is_idempotent(self, small_index):
        service = QueryService(small_index, workers=1)
        server = HTTPQueryServer(service, port=0).start()
        server.stop()
        server.stop()
        service.close()

    def test_retention_evicts_oldest_settled(self, small_index):
        with served(small_index, retention=2) as (_, server, _):
            ids = []
            for _ in range(3):
                _, _, records = post_query(server, "(?x, p0, ?y)")
                ids.append(records[0]["query_id"])
            # Oldest fell out; the two newest are still addressable.
            code, _, _ = request(server, "GET", f"/status/{ids[0]}")
            assert code == 404
            for qid in ids[1:]:
                code, _, _ = request(server, "GET", f"/status/{qid}")
                assert code == 200
