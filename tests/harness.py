"""Cross-backend differential harness.

One place encodes what "two RPQ backends agree" means, so every suite
(corpus replay, hypothesis properties, metamorphic identities) asserts
the same contract:

* **equivalence** — on an unbounded run, every backend returns exactly
  the brute-force product-graph oracle's pair set, with no flags;
* **limit boundaries** — at ``limit == 0``, exactly at ``limit ==
  |answers|``, one above, and strictly below, every backend's
  truncation flag and pair set obey the engine contract (a truncated
  set is a subset of the full answers, never larger than the cap;
  fixed-fixed queries never truncate at positive caps);
* **budget tagging** — under a zero timeout or a pre-tripped cancel
  token, a backend either finishes (complete, exact answers) or
  returns a flagged partial that is a subset of the full answers.

The harness also owns the on-disk regression corpus format
(``tests/corpus/*.json``): a graph (triples + symmetric predicates)
plus one or more queries.  Hypothesis failures are saved through
:func:`save_corpus_case` under a stable per-test name, so shrinking
overwrites the file and the minimal counterexample is what lands in
the repo.
"""

from __future__ import annotations

import inspect
import json
import threading
from pathlib import Path

from repro.baselines.base import EncodedGraph
from repro.baselines.product_bfs import ProductBFSEngine
from repro.core.engine import RingRPQEngine
from repro.core.query import as_query
from repro.graph.model import Graph
from repro.matrix import MatrixRPQEngine, RoutedRPQEngine
from repro.ring.builder import RingIndex
from repro.testing import brute_force_rpq

CORPUS_DIR = Path(__file__).parent / "corpus"

#: The harness line-up: the paper's engine, the sparse-matrix backend,
#: the cost-model router, and the classical naive baseline.
BACKENDS = ("ring", "matrix", "routed", "product-bfs")


def build_engines(index, names=BACKENDS) -> dict:
    """The harness backends over one shared index."""
    engines = {}
    for name in names:
        if name == "ring":
            engines[name] = RingRPQEngine(index)
        elif name == "matrix":
            engines[name] = MatrixRPQEngine(index)
        elif name == "routed":
            engines[name] = RoutedRPQEngine(index)
        elif name == "product-bfs":
            engines[name] = ProductBFSEngine(EncodedGraph.from_index(index))
        else:
            raise ValueError(f"unknown harness backend {name!r}")
    return engines


def _evaluate(engine, query, **kwargs):
    """Call ``engine.evaluate`` with only the kwargs it supports
    (the naive baseline predates ``cancel``/``forbidden_nodes``)."""
    params = inspect.signature(engine.evaluate).parameters
    kwargs = {k: v for k, v in kwargs.items() if k in params}
    return engine.evaluate(query, **kwargs)


def supports_cancel(engine) -> bool:
    return "cancel" in inspect.signature(engine.evaluate).parameters


# ----------------------------------------------------------------------
# The contract checks
# ----------------------------------------------------------------------


def check_equivalence(engines: dict, query, oracle: set,
                      context: str = "") -> None:
    """Unbounded run: exact oracle agreement, clean flags."""
    for name, engine in engines.items():
        result = _evaluate(engine, query, timeout=60)
        stats = result.stats
        assert not (stats.timed_out or stats.truncated or stats.cancelled), (
            context, name, str(query), "flags on unbounded run",
        )
        assert result.pairs == oracle, (
            context, name, str(query),
            sorted(result.pairs ^ oracle)[:5],
        )


def check_limit_boundaries(engines: dict, query, oracle: set,
                           context: str = "") -> None:
    """The truncation contract at and around the cap.

    ``limit == 0``: empty and truncated, for every backend and shape.
    Fixed-fixed queries never truncate at positive caps (their only
    possible answer cannot be cut).  Otherwise: one past the answer
    count must be complete and untagged; at or below the count the
    backend must return a subset no larger than the cap, and an
    untagged result must be the complete answer set.
    """
    shape = as_query(query).shape()
    n = len(oracle)
    probes = sorted({0, 1, max(1, n // 2), n, n + 1})
    for name, engine in engines.items():
        for limit in probes:
            result = _evaluate(engine, query, timeout=60, limit=limit)
            stats = result.stats
            where = (context, name, str(query), f"limit={limit}", f"n={n}")
            if limit == 0:
                assert stats.truncated and not result.pairs, where
                continue
            if shape == "cc":
                assert result.pairs == oracle, where
                assert not stats.truncated, where
                continue
            assert result.pairs <= oracle, where
            assert len(result.pairs) <= limit, where
            if limit > n:
                assert result.pairs == oracle, where
                assert not stats.truncated, where
            elif not stats.truncated:
                # A backend may stop exactly at the boundary either
                # tagged (it cannot know the set was complete) or, if
                # it proved completion, untagged — but an untagged
                # result must be the whole answer set.
                assert result.pairs == oracle, where


def check_budget_tagging(engines: dict, query, oracle: set,
                         context: str = "") -> None:
    """Zero-timeout and pre-tripped-cancel runs stay well-formed."""
    for name, engine in engines.items():
        result = _evaluate(engine, query, timeout=0.0)
        stats = result.stats
        where = (context, name, str(query), "timeout=0")
        assert result.pairs <= oracle, where
        if not stats.timed_out:
            # Finished between budget ticks: must be the real answer.
            assert result.pairs == oracle, where

        if not supports_cancel(engine):
            continue
        token = threading.Event()
        token.set()
        result = _evaluate(engine, query, timeout=60, cancel=token)
        stats = result.stats
        where = (context, name, str(query), "cancel pre-set")
        assert result.pairs <= oracle, where
        if not stats.cancelled:
            assert result.pairs == oracle, where


def check_query(graph: Graph, query, engines: dict | None = None,
                completed: Graph | None = None,
                context: str = "") -> None:
    """Run the full contract for one query on one graph."""
    if engines is None:
        engines = build_engines(RingIndex.from_graph(graph))
    oracle = brute_force_rpq(graph, query, completed)
    check_equivalence(engines, query, oracle, context)
    check_limit_boundaries(engines, query, oracle, context)
    check_budget_tagging(engines, query, oracle, context)


# ----------------------------------------------------------------------
# Corpus I/O
# ----------------------------------------------------------------------


def load_corpus_case(path: Path) -> tuple[Graph, list[str]]:
    """One corpus file: the graph and its queries."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    graph = Graph(
        (s, p, o) for s, p, o in data["triples"]
    ) if not data.get("symmetric") else Graph(
        ((s, p, o) for s, p, o in data["triples"]),
        symmetric_predicates=data["symmetric"],
    )
    queries = data.get("queries")
    if queries is None:
        queries = [data["query"]]
    return graph, queries


def save_corpus_case(name: str, graph: Graph, query,
                     note: str = "") -> Path:
    """Persist a (shrunk) failing case as a corpus regression file.

    Writing under a stable per-test ``name`` means hypothesis's
    shrinking loop overwrites the file as the example gets smaller;
    the version that survives is the minimal counterexample.
    """
    CORPUS_DIR.mkdir(exist_ok=True)
    path = CORPUS_DIR / f"{name}.json"
    payload = {
        "triples": [list(t) for t in graph],
        "symmetric": sorted(graph.symmetric_predicates),
        "query": str(as_query(query)),
    }
    if note:
        payload["note"] = note
    path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return path


def iter_corpus():
    """Yield ``(file_name, graph, queries)`` for every corpus case."""
    if not CORPUS_DIR.is_dir():
        return
    for path in sorted(CORPUS_DIR.glob("*.json")):
        graph, queries = load_corpus_case(path)
        yield path.name, graph, queries
