"""Tests for the calibrated substrate cost model."""

from __future__ import annotations

import pytest

from repro.bench.costmodel import (
    DEFAULT_COSTS,
    MODELED_TIMEOUT,
    CostModel,
)
from repro.bench.runner import BenchmarkResults, QueryRecord
from repro.core.query import RPQ


def _record(engine: str, ops: int, timed_out: bool = False,
            pattern: str = "v * c", shape: str = "c-to-v") -> QueryRecord:
    return QueryRecord(
        query=RPQ.parse("(?x, p*, n0)"),
        pattern=pattern,
        shape=shape,
        engine=engine,
        elapsed=0.01,
        timed_out=timed_out,
        truncated=False,
        n_results=1,
        storage_ops=ops,
    )


class TestCostModel:
    def test_modeled_time_linear_in_ops(self):
        model = CostModel.default()
        record = _record("ring", 1_000_000)
        assert model.modeled_time(record) == pytest.approx(
            1_000_000 * DEFAULT_COSTS["ring"]
        )

    def test_timeout_pinning(self):
        model = CostModel.default()
        assert model.modeled_time(_record("ring", 5, timed_out=True)) \
            == MODELED_TIMEOUT

    def test_censoring_at_modeled_timeout(self):
        model = CostModel.default()
        huge = _record("alp-jena", 10**12)
        assert model.modeled_time(huge) == MODELED_TIMEOUT

    def test_unknown_engine(self):
        model = CostModel.default()
        with pytest.raises(KeyError):
            model.modeled_time(_record("nope", 10))

    def test_summary_and_wins(self):
        results = BenchmarkResults(timeout=1.0)
        results.records = [
            _record("ring", 1_000),
            _record("ring", 3_000),
            _record("alp-jena", 500),
            _record("alp-jena", 700),
        ]
        model = CostModel.default()
        ring = model.summary(results, "ring")
        jena = model.summary(results, "alp-jena")
        assert ring.count == jena.count == 2
        # 2k ops @ 60ns << 600 ops @ 1.5us
        assert ring.average < jena.average
        wins = model.pattern_wins(results)
        assert wins == {"v * c": "ring"}

    def test_pattern_median_missing(self):
        results = BenchmarkResults(timeout=1.0)
        model = CostModel.default()
        assert model.pattern_median(results, "ring", "v * c") is None

    def test_all_table2_engines_have_costs(self):
        from repro.baselines.registry import TABLE2_ENGINES

        for engine in TABLE2_ENGINES:
            assert engine in DEFAULT_COSTS
