"""Tests for EXPLAIN / EXPLAIN ANALYZE: plans, estimates, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench.costmodel import estimate_rpq_cost
from repro.cli import main
from repro.obs.explain import explain_analyze, format_plan, plan_dict


class TestEstimate:
    def test_counts_positive_and_priced(self, kg_index):
        est = estimate_rpq_cost(kg_index, "(?x, p0/p1*, ?y)")
        assert est.shape == "vv"
        assert est.edges > 0
        assert est.touched_nodes <= kg_index.ring.num_nodes
        assert est.lp_nodes > 0 and est.ls_nodes > 0
        assert est.storage_ops == 2 * (est.lp_nodes + est.ls_nodes)
        assert est.modeled_seconds > 0
        assert set(est.counts()) == {
            "lp_nodes", "ls_nodes", "backward_steps", "storage_ops"
        }

    def test_vv_doubles_anchored_work(self, kg_index):
        anchored = estimate_rpq_cost(kg_index, "(n0, p0/p1*, ?y)")
        vv = estimate_rpq_cost(kg_index, "(?x, p0/p1*, ?y)")
        assert vv.lp_nodes == 2 * anchored.lp_nodes
        assert vv.backward_steps == 2 * anchored.backward_steps

    def test_unknown_predicate_has_floor_estimates(self, kg_index):
        est = estimate_rpq_cost(kg_index, "(?x, nosuchpred, ?y)")
        assert est.edges == 0
        assert est.backward_steps >= 1
        assert est.storage_ops > 0


class TestPlan:
    def test_plan_dict_sections(self, kg_index):
        plan = plan_dict(kg_index, "(?x, p0/p1*, ?y)")
        assert plan["shape"] == "vv"
        assert "strategy" in plan
        auto = plan["automaton"]
        assert auto["num_states"] == 3
        assert len(auto["transitions"]) == 3
        assert set(plan["b_table"]) == {"p0", "p1"}
        assert plan["estimate"]["storage_ops"] > 0

    def test_format_plan_renders_all_sections(self, kg_index):
        text = format_plan(kg_index, "(?x, p0/p1*, ?y)")
        assert "Glushkov automaton: 3 states" in text
        assert "B table" in text
        assert "cost-model estimates" in text
        assert "-->" in text

    def test_plan_json_serialisable(self, kg_index):
        json.dumps(plan_dict(kg_index, "(n0, p0+, ?y)"))


class TestAnalyze:
    @pytest.fixture(scope="class")
    def report(self, kg_index):
        return explain_analyze(kg_index, "(?x, p0/p1*, ?y)")

    def test_comparison_rows_pair_estimates_with_actuals(self, report):
        rows = report.comparison()
        phases = {row["phase"] for row in rows}
        assert "predicates_from_objects" in phases
        assert "subjects_from_predicates" in phases
        by_metric = {
            (r["phase"], r["metric"]): r for r in rows
        }
        lp = by_metric[("predicates_from_objects", "nodes_visited")]
        assert lp["estimated"] > 0 and lp["actual"] > 0
        assert lp["ratio"] == pytest.approx(
            lp["estimated"] / lp["actual"]
        )
        pruned = by_metric[("predicates_from_objects", "nodes_pruned")]
        assert pruned["estimated"] is None and pruned["ratio"] is None

    def test_misestimation_ratio(self, report):
        ratio = report.misestimation()
        assert ratio is not None and ratio > 0

    def test_span_tree_depth(self, report):
        """Acceptance: the captured span tree is >= 3 levels deep
        (engine phase -> wave/round -> ring step)."""
        assert report.metrics.spans.max_depth() >= 3

    def test_format_contains_table_and_tree(self, report):
        text = report.format()
        assert "ANALYZE:" in text
        assert "est/actual" in text
        assert "misestimation" in text
        assert "span tree" in text

    def test_to_dict_serialisable(self, report):
        dump = json.loads(report.to_json())
        assert dump["analyze"]["schema_version"] == 2
        assert dump["span_max_depth"] >= 3
        assert dump["comparison"]
        assert "_text" not in dump["plan"]

    def test_write_chrome_trace(self, report, tmp_path):
        path = tmp_path / "trace.json"
        report.write_chrome_trace(path)
        trace = json.loads(path.read_text())
        assert len(trace["traceEvents"]) == len(report.metrics.spans)
        assert all(e["ph"] == "X" for e in trace["traceEvents"])


class TestCli:
    @pytest.fixture()
    def graph_file(self, tmp_path, kg_graph):
        from repro.graph.io import save_graph

        path = tmp_path / "kg.nt"
        save_graph(kg_graph, path)
        return str(path)

    def test_explain_plain(self, graph_file, capsys):
        rc = main(["explain", graph_file, "(?x, p0/p1*, ?y)"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "strategy" in out and "cost-model estimates" in out
        assert "ANALYZE" not in out

    def test_explain_json(self, graph_file, capsys):
        rc = main(["explain", graph_file, "(?x, p0, ?y)", "--json"])
        assert rc == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["estimate"]["edges"] > 0

    def test_explain_analyze(self, graph_file, capsys):
        rc = main([
            "explain", graph_file, "(?x, p0/p1*, ?y)", "--analyze",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ANALYZE:" in out and "est/actual" in out

    def test_explain_trace_implies_analyze(self, graph_file, tmp_path,
                                           capsys):
        trace_path = tmp_path / "trace.json"
        rc = main([
            "explain", graph_file, "(?x, p0+, ?y)",
            "--trace", str(trace_path),
        ])
        assert rc == 0
        assert "ANALYZE:" in capsys.readouterr().out
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
