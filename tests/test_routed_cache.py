"""Regression tests: the result cache must never cross backends.

The ring and matrix backends materialise *different deterministic
prefixes* when a limit truncates a run (ring emits in backward-search
discovery order, the matrix backend in sorted coordinate order), so a
cached truncated entry is only a faithful replay for the backend that
produced it.  The fix under test: the service resolves the routing
decision *before* the cache lookup and the decision joins the cache
key, so a hit can only ever serve a result produced by the same
backend the router would choose now.
"""

from __future__ import annotations

import pytest

from repro.core.query import as_query
from repro.core.result import QueryResult, QueryStats
from repro.graph.generators import random_graph
from repro.ring.builder import RingIndex
from repro.serve.keys import index_fingerprint, query_cache_key
from repro.serve.service import QueryService


@pytest.fixture(scope="module")
def tiny_index():
    return RingIndex.from_graph(
        random_graph(n_nodes=10, n_edges=30, n_predicates=3, seed=1)
    )


class FlippableRoutingEngine:
    """A stub routing engine whose backends return *different*
    truncated prefixes — exactly the hazard the key must prevent."""

    PAIRS = {
        "alpha": frozenset({("a-subject", "a-object")}),
        "beta": frozenset({("b-subject", "b-object")}),
    }

    name = "stub-router"

    def __init__(self):
        self.backend = "alpha"
        self.backend_calls = 0
        self.evaluations = 0

    def backend_for(self, query):
        self.backend_calls += 1
        return self.backend

    def evaluate(self, query, timeout=None, limit=None, metrics=None,
                 cancel=None, query_id=None):
        self.evaluations += 1
        stats = QueryStats(query_id=query_id or "")
        stats.backend = self.backend
        pairs = set(self.PAIRS[self.backend])
        if limit is not None and limit <= len(pairs):
            stats.truncated = True
            pairs = set(sorted(pairs)[:limit])
        return QueryResult(pairs=pairs, stats=stats)


def test_cache_key_carries_backend(tiny_index):
    fp = index_fingerprint(tiny_index)
    rpq = as_query("(?x, p0/p1*, ?y)")
    legacy = query_cache_key(rpq, fp)
    assert legacy == query_cache_key(rpq, fp, backend=None)
    ring_key = query_cache_key(rpq, fp, backend="ring")
    matrix_key = query_cache_key(rpq, fp, backend="matrix")
    assert ring_key != matrix_key
    assert ring_key != legacy and matrix_key != legacy
    # The backend extends the legacy tuple; it never perturbs the
    # normalization-dependent prefix.
    assert ring_key[:len(legacy)] == legacy


def test_cache_hit_never_crosses_backends(tiny_index):
    engine = FlippableRoutingEngine()
    service = QueryService(
        tiny_index, workers=1, cache_size=32, engine=engine,
    )
    try:
        query = "(?x, p0+, ?y)"

        first = service.submit(query, timeout=5, limit=1).result(5)
        assert first.pairs == {("a-subject", "a-object")}
        assert first.stats.truncated and engine.evaluations == 1

        # Reroute: same query, same limit, other backend.  Without the
        # backend in the key this would *hit* alpha's truncated entry
        # and serve the wrong prefix.
        engine.backend = "beta"
        second = service.submit(query, timeout=5, limit=1).result(5)
        assert second.pairs == {("b-subject", "b-object")}
        assert not second.stats.cached
        assert engine.evaluations == 2

        # Back to alpha: its entry is still there and still serves —
        # hits within one backend keep working.
        engine.backend = "alpha"
        third = service.submit(query, timeout=5, limit=1).result(5)
        assert third.pairs == {("a-subject", "a-object")}
        assert third.stats.cached
        assert engine.evaluations == 2
    finally:
        service.close()


def test_routing_decided_before_cache_lookup(tiny_index):
    """A cache hit must still consult the router: the decision is part
    of the lookup key, so ``backend_for`` runs on every submission,
    including ones the cache answers."""
    engine = FlippableRoutingEngine()
    service = QueryService(
        tiny_index, workers=1, cache_size=32, engine=engine,
    )
    try:
        query = "(?x, p1, ?y)"
        service.submit(query, timeout=5, limit=1).result(5)
        assert engine.backend_calls == 1
        hit = service.submit(query, timeout=5, limit=1).result(5)
        assert hit.stats.cached
        assert engine.evaluations == 1
        # Routed before the hit was served, not only on misses.
        assert engine.backend_calls == 2
    finally:
        service.close()


def test_real_router_caches_per_backend(tiny_index):
    """End-to-end with the real router: repeated submissions hit the
    cache and the replay carries the routed backend's answer."""
    pytest.importorskip("scipy", reason="matrix backend needs scipy",
                    exc_type=ImportError)
    from repro.matrix import RoutedRPQEngine

    engine = RoutedRPQEngine(tiny_index)
    service = QueryService(
        tiny_index, workers=1, cache_size=32, engine=engine,
    )
    try:
        query = "(?x, (p0|p2)+, ?y)"
        first = service.submit(query, timeout=10).result(10)
        assert not first.stats.cached
        again = service.submit(query, timeout=10).result(10)
        assert again.stats.cached
        assert again.pairs == first.pairs
    finally:
        service.close()
