"""Tests for the benchmark harness (patterns, workload, runner, space)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.baselines.registry import TABLE2_ENGINES
from repro.bench.boxplot import boxplot_csv, render_pattern_boxplots
from repro.bench.context import build_context, tiny_context
from repro.bench.patterns import (
    RECURSIVE_PATTERNS,
    TABLE1_REFERENCE,
    classify_query,
    expression_skeleton,
    table1_total,
)
from repro.bench.runner import query_shape_class, run_benchmark
from repro.bench.space import (
    SYSTEM_MODELS,
    engine_bytes_per_edge,
    packed_bytes_per_edge,
    ring_bytes_per_edge,
    working_space_bytes_per_edge,
)
from repro.bench.stats import (
    FiveNumber,
    geometric_mean,
    percentile,
    percentiles,
    summarize,
)
from repro.bench.workload import generate_query_log
from repro.bench.table1 import format_table1, regenerate_table1
from repro.core.query import RPQ
from repro.graph.generators import wikidata_like


@pytest.fixture(scope="module")
def graph():
    return wikidata_like(n_nodes=250, n_edges=1_500, n_predicates=12, seed=1)


class TestPatterns:
    @pytest.mark.parametrize(
        "query,pattern",
        [
            ("(?x, a/b*, c)", "v /* c"),
            ("(?x, a*, c)", "v * c"),
            ("(c, a*, ?y)", "c * v"),
            ("(?x, a/b, ?y)", "v / v"),
            ("(?x, ^a, ?y)", "v ^ v"),
            ("(?x, a*/b*/c*/d*, c)", "v */*/*/* c"),
            ("(?x, a|b, ?y)", "v | v"),
            ("(?x, a/b?, c)", "v /? c"),
            ("(?x, a/^b, ?y)", "v /^ v"),
            ("(?x, a, c)", "v c"),
            ("(a, b, c)", "c c"),
        ],
    )
    def test_classify(self, query, pattern):
        assert classify_query(RPQ.parse(query)) == pattern

    def test_skeleton_grouping(self):
        assert expression_skeleton(RPQ.parse("(?x, (a|b)+, c)").expr) \
            == "(|)+"
        assert expression_skeleton(RPQ.parse("(?x, !(a), c)").expr) == "!"

    def test_reference_is_consistent(self):
        # generator templates must classify to their own pattern
        assert len(TABLE1_REFERENCE) == 20
        assert table1_total() == sum(
            c for _, c, _, _, _ in TABLE1_REFERENCE
        )
        for pattern, _, s_kind, template, o_kind in TABLE1_REFERENCE:
            n = template.count("{")
            expr = template.format(*[f"p{i}" for i in range(n)])
            s = "?x" if s_kind == "v" else "Q1"
            o = "?y" if o_kind == "v" else "Q2"
            assert classify_query(RPQ.of(s, expr, o)) == pattern

    def test_recursive_patterns(self):
        assert "v * c" in RECURSIVE_PATTERNS
        assert "v / v" not in RECURSIVE_PATTERNS
        assert len(RECURSIVE_PATTERNS) == 12


class TestWorkload:
    def test_scale_and_mix(self, graph):
        queries = generate_query_log(graph, scale=0.05, seed=0)
        histogram = Counter(classify_query(q) for q in queries)
        for pattern, count, _, _, _ in TABLE1_REFERENCE:
            expected = max(1, round(count * 0.05))
            assert histogram[pattern] == expected

    def test_deterministic(self, graph):
        a = generate_query_log(graph, scale=0.02, seed=9)
        b = generate_query_log(graph, scale=0.02, seed=9)
        assert [str(q) for q in a] == [str(q) for q in b]

    def test_full_scale_matches_paper_counts(self):
        # Needs enough predicate diversity: a pattern like "v ^ v" is
        # unique per predicate, so the vocabulary must exceed the
        # largest variable-only pattern count.
        rich = wikidata_like(
            n_nodes=500, n_edges=4_000, n_predicates=64, seed=4
        )
        queries = generate_query_log(rich, scale=1.0, seed=0)
        histogram = Counter(classify_query(q) for q in queries)
        rows = regenerate_table1(rich, scale=1.0, seed=0)
        for pattern, reproduced, paper in rows:
            assert reproduced == histogram[pattern]
            # full scale hits the paper count exactly
            assert reproduced == paper, pattern

    def test_constants_are_satisfiable(self, graph):
        # anchored constants must be incident to the sampled predicate
        queries = generate_query_log(graph, scale=0.03, seed=2)
        nodes = set(graph.nodes)
        for q in queries:
            if not q.subject_is_var:
                assert q.subject in nodes
            if not q.object_is_var:
                assert q.object in nodes

    def test_format_table1(self, graph):
        rows = regenerate_table1(graph, scale=0.02, seed=0)
        text = format_table1(rows, 0.02)
        assert "v /* c" in text
        assert "total" in text


class TestRunnerAndStats:
    @pytest.fixture(scope="class")
    def context(self):
        return tiny_context(
            n_nodes=120, n_edges=600, n_predicates=8, log_scale=0.015
        )

    @pytest.fixture(scope="class")
    def results(self, context):
        return run_benchmark(
            context.engines, context.queries,
            timeout=context.timeout, limit=context.limit,
        )

    def test_engines_and_records(self, context, results):
        assert results.engines() == list(TABLE2_ENGINES)
        assert len(results.records) == len(context.queries) * len(
            context.engines
        )

    def test_engines_agree(self, results):
        assert results.consistency_check() == []

    def test_summaries(self, results):
        for engine in results.engines():
            summary = results.summary(engine)
            assert summary.count > 0
            assert summary.average >= 0
            assert summary.timeouts >= 0
            text = str(summary)
            assert "avg=" in text

    def test_shape_split(self, context, results):
        cv = results.summary("ring", "c-to-v")
        vv = results.summary("ring", "v-to-v")
        assert cv.count + vv.count == len(context.queries)

    def test_pattern_helpers(self, results):
        patterns = results.patterns()
        assert patterns
        top = patterns[0]
        summary = results.pattern_summary("ring", top)
        assert summary is not None
        assert summary.minimum <= summary.median <= summary.maximum
        assert results.pattern_summary("ring", "no such pattern") is None
        wins = results.pattern_wins()
        assert set(wins) == set(patterns)

    def test_mean_storage_ops(self, results):
        assert results.mean_storage_ops("ring") > 0
        assert results.mean_storage_ops("ring", "c-to-v") >= 0

    def test_counter_aggregation(self, results):
        names = results.counter_names("ring")
        assert "storage_ops" in names and "wavelet_nodes" in names
        assert results.mean_counter("ring", "storage_ops") == \
            results.mean_storage_ops("ring")
        # a counter nobody recorded averages to zero, not KeyError
        assert results.mean_counter("ring", "no_such_counter") == 0.0
        table = results.operations_by_pattern("ring")
        assert set(table) == set(results.patterns())
        for pattern, row in table.items():
            assert set(row) == set(names)
            for name, cell in row.items():
                assert set(cell) == {"mean", "p50", "p90", "p99"}
                assert 0 <= cell["p50"] <= cell["p90"] <= cell["p99"]
                assert cell["mean"] == pytest.approx(
                    results.mean_counter("ring", name, pattern=pattern)
                )

    def test_boxplot_render(self, results):
        text = render_pattern_boxplots(results)
        assert "pattern:" in text
        assert "M" in text
        csv = boxplot_csv(results)
        assert csv.startswith("pattern,engine,min,q1,median,q3,max")

    def test_shape_class(self):
        assert query_shape_class(RPQ.parse("(?x, p, ?y)")) == "v-to-v"
        assert query_shape_class(RPQ.parse("(a, p, ?y)")) == "c-to-v"
        assert query_shape_class(RPQ.parse("(a, p, b)")) == "c-to-v"


class TestStats:
    def test_summarize_counts_timeouts_at_cap(self):
        summary = summarize([0.1, 5.0, 0.2], [False, True, False], 2.0)
        assert summary.timeouts == 1
        assert summary.average == pytest.approx((0.1 + 2.0 + 0.2) / 3)

    def test_summarize_empty(self):
        summary = summarize([], [], 2.0)
        assert summary.count == 0

    def test_five_number(self):
        fn = FiveNumber.of([1.0, 2.0, 3.0, 4.0])
        assert fn.minimum == 1.0 and fn.maximum == 4.0
        assert fn.as_tuple()[2] == fn.median

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([0.0, 1.0], floor=1e-6) > 0

    def test_percentile_interpolates_linearly(self):
        values = [4.0, 1.0, 3.0, 2.0]  # sorted: 1 2 3 4
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile(values, 25) == pytest.approx(1.75)

    def test_percentile_matches_numpy_linear(self):
        import numpy as np
        import random

        rng = random.Random(5)
        values = [rng.uniform(0, 100) for _ in range(137)]
        for q in (0, 1, 10, 50, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_percentile_validates_input(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentiles_dict(self):
        out = percentiles([1.0, 2.0, 3.0])
        assert set(out) == {"p50", "p90", "p95", "p99", "max"}
        assert out["p50"] == 2.0 and out["max"] == 3.0
        assert out["p90"] <= out["p95"] <= out["p99"] <= out["max"]
        assert percentiles([]) == {}


class TestSpace:
    @pytest.fixture(scope="class")
    def index(self, graph):
        from repro.ring.builder import RingIndex

        return RingIndex.from_graph(graph)

    def test_models_near_paper(self):
        assert SYSTEM_MODELS["alp-jena"].bytes_per_edge() == \
            pytest.approx(96.0, rel=0.05)
        assert SYSTEM_MODELS["alp-blazegraph"].bytes_per_edge() == \
            pytest.approx(90.79, rel=0.05)
        assert SYSTEM_MODELS["seminaive-virtuoso"].bytes_per_edge() == \
            pytest.approx(60.07, rel=0.05)

    def test_ring_is_smallest(self, index):
        ring_size = ring_bytes_per_edge(index)
        for name in SYSTEM_MODELS:
            assert engine_bytes_per_edge(name, index) > ring_size

    def test_space_ratio_in_paper_ballpark(self, index):
        ring_size = ring_bytes_per_edge(index)
        ratios = [
            engine_bytes_per_edge(name, index) / ring_size
            for name in ("alp-jena", "alp-blazegraph",
                         "seminaive-virtuoso")
        ]
        # paper: 3-5x; our structures carry Python-level directory
        # overhead, so allow a wider band, but the win must be clear.
        assert min(ratios) > 2.5
        assert max(ratios) < 12

    def test_packed_and_working(self, index):
        assert packed_bytes_per_edge(index) > 0
        assert working_space_bytes_per_edge(index) > 0

    def test_unknown_engine_raises(self, index):
        with pytest.raises(KeyError):
            engine_bytes_per_edge("nope", index)


class TestContext:
    def test_build_context_shapes(self):
        context = build_context(
            n_nodes=100, n_edges=500, n_predicates=8, log_scale=0.01,
        )
        assert len(context.queries) >= 20  # one per pattern at least
        assert set(context.engines) == set(TABLE2_ENGINES)
        assert context.notes["n_nodes"] == 100
