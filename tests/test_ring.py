"""Tests for the ring data structure (§3.4)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstructionError
from repro.graph.generators import random_graph
from repro.graph.model import Graph
from repro.ring.builder import RingIndex
from repro.ring.dictionary import Dictionary
from repro.ring.ring import Ring


def build_ring(triples, num_nodes, num_preds, **kwargs):
    return Ring(triples, num_nodes, num_preds, **kwargs)


class TestConstruction:
    def test_empty(self):
        ring = build_ring([], 3, 2)
        assert len(ring) == 0
        assert ring.full_range() == (0, 0)
        assert ring.object_range(1) == (0, 0)
        assert list(ring.iter_triples()) == []

    def test_single_triple(self):
        ring = build_ring([(0, 0, 1)], 2, 1)
        assert len(ring) == 1
        assert list(ring.iter_triples()) == [(0, 0, 1)]
        assert ring.contains_triple(0, 0, 1)
        assert not ring.contains_triple(1, 0, 0)

    def test_dedup(self):
        ring = build_ring([(0, 0, 1), (0, 0, 1)], 2, 1)
        assert len(ring) == 1

    def test_id_validation(self):
        with pytest.raises(ConstructionError):
            build_ring([(0, 0, 5)], 2, 1)
        with pytest.raises(ConstructionError):
            build_ring([(0, 3, 1)], 2, 1)
        with pytest.raises(ConstructionError):
            build_ring([(-1, 0, 1)], 2, 1)

    def test_object_column_optional(self):
        ring = build_ring([(0, 0, 1)], 2, 1)
        assert ring.L_o is None
        with pytest.raises(ConstructionError):
            ring.lf_s(0)
        with pytest.raises(ConstructionError):
            ring.lf_o(0)
        with pytest.raises(ConstructionError):
            ring.subject_backward_step(0, 1, 0)

    def test_with_object_column(self):
        triples = [(0, 0, 1), (1, 0, 0), (1, 1, 0)]
        ring = build_ring(triples, 2, 2, keep_object_column=True)
        assert ring.L_o is not None
        # LF cycle: L_p -> L_s -> L_o -> back to L_p
        for i in range(len(ring)):
            j = ring.lf_p(i)
            k = ring.lf_s(j)
            assert ring.lf_o(k) == i


class TestRangesAndSearch:
    def test_ranges_partition(self):
        rng = random.Random(3)
        triples = sorted({
            (rng.randrange(6), rng.randrange(3), rng.randrange(6))
            for _ in range(30)
        })
        ring = build_ring(triples, 6, 3)
        # object ranges partition [0, n)
        position = 0
        for o in range(6):
            b, e = ring.object_range(o)
            assert b == position
            position = e
        assert position == len(ring)
        # predicate ranges partition [0, n)
        position = 0
        for p in range(3):
            b, e = ring.predicate_range(p)
            assert b == position
            assert ring.predicate_count(p) == e - b
            position = e
        assert position == len(ring)

    def test_backward_step_matches_naive(self):
        rng = random.Random(9)
        triples = sorted({
            (rng.randrange(8), rng.randrange(4), rng.randrange(8))
            for _ in range(60)
        })
        ring = build_ring(triples, 8, 4)
        for o in range(8):
            b_o, e_o = ring.object_range(o)
            for p in range(4):
                b_s, e_s = ring.backward_step(b_o, e_o, p)
                subjects = sorted(
                    ring.L_s.access(i) for i in range(b_s, e_s)
                )
                naive = sorted(
                    s for (s, pp, oo) in triples if pp == p and oo == o
                )
                assert subjects == naive, (o, p)

    def test_triple_roundtrip(self):
        rng = random.Random(1)
        triples = sorted({
            (rng.randrange(10), rng.randrange(5), rng.randrange(10))
            for _ in range(80)
        })
        ring = build_ring(triples, 10, 5)
        assert sorted(ring.iter_triples()) == triples
        for s, p, o in triples[:20]:
            assert ring.contains_triple(s, p, o)

    def test_size_accounting(self):
        ring = build_ring([(0, 0, 1), (1, 1, 0)], 2, 2)
        assert ring.size_in_bits() > 0
        assert ring.size_in_bits_model() > 0

    def test_selectivity_statistics(self):
        rng = random.Random(5)
        triples = sorted({
            (rng.randrange(6), rng.randrange(3), rng.randrange(6))
            for _ in range(40)
        })
        ring = build_ring(triples, 6, 3)
        for o in range(6):
            expected = len({p for (_, p, oo) in triples if oo == o})
            assert ring.count_distinct_predicates_into(o) == expected
        for p in range(3):
            expected = len({s for (s, pp, _) in triples if pp == p})
            assert ring.count_distinct_subjects_of(p) == expected


class TestRingIndex:
    def test_from_graph_roundtrip(self):
        g = random_graph(12, 40, 3, seed=11)
        index = RingIndex.from_graph(g)
        decoded = {
            index.dictionary.decode_triple(t)
            for t in index.ring.iter_triples()
        }
        assert decoded == set(g.completion())

    def test_from_triples(self):
        index = RingIndex.from_triples([("a", "p", "b")])
        assert len(index.ring) == 2  # edge + inverse

    def test_bytes_per_triple(self):
        g = random_graph(12, 40, 3, seed=11)
        index = RingIndex.from_graph(g)
        assert index.bytes_per_triple() > 0
        assert index.size_in_bits(include_dictionary=True) > \
            index.size_in_bits()

    def test_engine_property_cached(self):
        index = RingIndex.from_triples([("a", "p", "b")])
        assert index.engine is index.engine


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 7), st.integers(0, 3), st.integers(0, 7)
        ),
        max_size=60,
    )
)
def test_ring_roundtrip_property(triples):
    unique = sorted(set(triples))
    ring = Ring(unique, 8, 4)
    assert sorted(ring.iter_triples()) == unique
    # LF on L_p agrees with membership
    for s, p, o in unique:
        assert ring.contains_triple(s, p, o)
