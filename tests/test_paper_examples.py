"""Replays of the paper's worked examples (Figs. 2–7 and §3–§4 prose).

These tests pin the reproduction to the paper: every intermediate
value printed in the running example — ring positions, rank results,
bit-parallel state sets, traversal decisions, reported solutions — is
asserted here.  The paper uses 1-based inclusive positions; the
translation to this library's 0-based half-open ranges is spelled out
inline.
"""

from __future__ import annotations

import pytest

from repro.automata.bitparallel import ForwardSimulator, ReverseSimulator
from repro.automata.glushkov import build_glushkov
from repro.automata.parser import parse_regex
from repro.core.engine import _BackwardRun, _Budget, _EvalContext, _Prepared
from repro.core.result import QueryStats
from repro.obs.metrics import NULL_METRICS


@pytest.fixture(scope="module")
def index(request):
    from repro.graph.datasets import SANTIAGO_NODE_ORDER, santiago_transport
    from repro.ring.builder import RingIndex

    return RingIndex.from_graph(
        santiago_transport(),
        node_order=SANTIAGO_NODE_ORDER,
        predicate_order=["l1", "l2", "l5", "bus"],
        keep_object_column=True,
    )


class TestFig2BitParallel:
    """§3.3: the Glushkov automaton of a/b*/b on the string 'abba'."""

    def setup_method(self):
        self.automaton = build_glushkov(parse_regex("a/(b*)/b"))
        self.masks = self.automaton.b_masks_symbolic()
        self.fwd = ForwardSimulator(self.automaton, self.masks)

    def test_tables(self):
        mask_str = self.automaton.state_mask_str
        assert mask_str(self.masks["a"]) == "0100"
        assert mask_str(self.masks["b"]) == "0011"
        assert mask_str(self.automaton.final_mask) == "0001"
        assert self.automaton.m == 3

    def test_trace_abba(self):
        mask_str = self.automaton.state_mask_str
        d = self.fwd.start()
        assert mask_str(d) == "1000"  # initial state active
        d = self.fwd.step(d, "a")
        assert mask_str(d) == "0100"  # T[1000] & B[a]
        d = self.fwd.step(d, "b")
        assert mask_str(d) == "0011"  # states 2 and 3 active
        assert self.fwd.is_final(d)   # D & F != 0: report match
        d = self.fwd.step(d, "b")
        assert mask_str(d) == "0011"
        assert self.fwd.is_final(d)
        d = self.fwd.step(d, "a")
        assert d == 0                 # run out of active states


class TestFig3Ring:
    """§3.4: the ring of the completed graph (16 triples)."""

    def test_sixteen_triples(self, index):
        assert len(index.ring) == 16

    def test_paper_id_assignment(self, index):
        d = index.dictionary
        # Paper ids 1..5 are our 0..4 in the same order.
        assert [d.node_label(i) for i in range(5)] == \
            ["SA", "UCh", "LH", "BA", "Baq"]
        assert d.predicate_labels == ("l1", "l2", "l5", "bus", "^bus")

    def test_object_partitions_of_lp(self, index):
        # Paper: L_p partitioned by objects 1..5; BA's block is
        # L_p[11..14] and Baq's is L_p[15..16] (1-based inclusive).
        ring = index.ring
        d = index.dictionary
        assert ring.object_range(d.node_id("BA")) == (10, 14)
        assert ring.object_range(d.node_id("Baq")) == (14, 16)

    def test_predicate_partitions_of_ls(self, index):
        # Paper: "the area of I5 in L_s [is] L_s[7..10]" (1-based).
        ring = index.ring
        d = index.dictionary
        assert ring.predicate_range(d.predicate_id("l5")) == (6, 10)
        assert ring.predicate_range(d.predicate_id("^bus")) == (13, 16)

    def test_lf_walk_of_lp16(self, index):
        # Paper: the triple at L_p[16] is BA --l5--> Baq; its subject is
        # found at L_s[10], and cyclically L_o[12] = Baq.
        ring = index.ring
        d = index.dictionary
        i = 15  # 1-based 16
        assert d.predicate_label(ring.L_p.access(i)) == "l5"
        j = ring.lf_p(i)
        assert j == 9  # 1-based 10
        assert d.node_label(ring.L_s.access(j)) == "BA"
        k = ring.lf_s(j)
        assert k == 11  # 1-based 12
        assert d.node_label(ring.L_o.access(k)) == "Baq"
        assert ring.lf_o(k) == i  # the cycle closes
        assert d.decode_triple(ring.triple_at_lp(i)) == ("BA", "l5", "Baq")

    def test_backward_search_example(self, index):
        # Paper: from L_p[11..14] (object BA), a backward step on l5
        # yields L_s[8..9] = <1, 5>: sources SA and Baq.
        ring = index.ring
        d = index.dictionary
        b_o, e_o = ring.object_range(d.node_id("BA"))
        b_s, e_s = ring.backward_step(b_o, e_o, d.predicate_id("l5"))
        assert (b_s, e_s) == (7, 9)  # 1-based inclusive [8..9]
        assert [d.node_label(ring.L_s.access(i)) for i in range(b_s, e_s)] \
            == ["SA", "Baq"]


class TestFig4WaveletTree:
    """§3.5: rank walk on the wavelet tree of L_p."""

    def test_rank4_of_5(self, index):
        # Paper: rank_4(L_p, 5) = 2 and C_p[4] = 10, so LF_p(5) = 12.
        ring = index.ring
        d = index.dictionary
        bus = d.predicate_id("bus")  # paper symbol 4
        assert ring.L_p.access(4) == bus  # L_p[5] = 4 (1-based)
        assert ring.L_p.rank(bus, 5) == 2
        # number of smaller symbols in L_s ordering = C_p[bus] = 10
        assert ring.predicate_range(bus)[0] == 10
        assert ring.lf_p(4) == 11  # 1-based 12

    def test_distinct_symbols_enumeration(self, index):
        # The §3.5 warm-up: distinct symbols of a range, here the
        # labels reaching Baq (L_p[15..16]) = {l1, l5}.
        ring = index.ring
        d = index.dictionary
        labels = [
            d.predicate_label(p)
            for p in ring.L_p.range_list_symbols(14, 16)
        ]
        assert labels == ["l1", "l5"]


class TestFig5ReverseAutomaton:
    """§4: the automaton of ^bus/l5*/l5 and its reverse tables."""

    def setup_method(self):
        self.automaton = build_glushkov(parse_regex("^bus/(l5*)/l5"))
        self.masks = self.automaton.b_masks_symbolic()
        self.reverse = ReverseSimulator(self.automaton, self.masks)

    def test_tables_match_fig2_shape(self):
        mask_str = self.automaton.state_mask_str
        assert mask_str(self.masks["^bus"]) == "0100"  # B[a] of Fig. 2
        assert mask_str(self.masks["l5"]) == "0011"    # B[b] of Fig. 2
        assert mask_str(self.automaton.final_mask) == "0001"

    def test_reverse_table_entries(self):
        mask_str = self.automaton.state_mask_str
        table = self.reverse.table
        # Paper: T'[0001] = 0110 (states 1 and 2 activated).
        assert mask_str(table[0b1000]) == "0110"  # paper's 0001
        # From the Fig. 6 trace: T'[0100] (paper 0010, state 1) = 1000.
        assert mask_str(table[0b0010]) == "1000"


class TestFig6Traversal:
    """§4.3: the full traversal of (y, ^bus/l5*/l5, Baq)."""

    def run_traversal(self, index):
        expr = parse_regex("^bus/(l5*)/l5")
        prepared = _Prepared(expr, index)
        stats = QueryStats()
        run = _BackwardRun(
            index.engine, prepared,
            _EvalContext(_Budget(None), stats, NULL_METRICS),
            prune=True,
        )
        anchor = index.dictionary.node_id("Baq")
        reported = run.run(
            index.ring.object_range(anchor), start_node=anchor
        )
        return prepared.automaton, run, reported, stats

    def test_solutions(self, index):
        automaton, run, reported, _ = self.run_traversal(index)
        labels = {index.dictionary.node_label(n) for n in reported}
        assert labels == {"SA", "UCh"}

    def test_visited_state_sets(self, index):
        # The D[s] cells at the end of the Fig. 6 trace.
        automaton, run, reported, _ = self.run_traversal(index)
        d = index.dictionary
        mask_str = automaton.state_mask_str
        visited = {
            d.node_label(node): mask_str(mask)
            for node, mask in run.visited.items()
        }
        assert visited == {
            "Baq": "0111",  # start 0001, revisited with 0110
            "BA": "0110",
            "SA": "1110",   # 0110 via l5, then 1000 via ^bus
            "UCh": "1000",
        }

    def test_product_graph_size(self, index):
        # Fig. 7: the traversal touches exactly the induced subgraph
        # G'_E: 5 accepted (node, state-set) expansions and 6 accepted
        # predicate-edge groups (the dashed loop edges are rejected at
        # the subject filter, the rest at the B[v] filter).
        _, _, _, stats = self.run_traversal(index)
        assert stats.product_nodes == 5
        assert stats.product_edges == 6

    def test_engine_end_to_end(self, index):
        # (Baq, l5+/bus, ?y) — the user-facing form of the same query.
        result = index.evaluate("(Baq, l5+/bus, ?y)")
        assert result.pairs == {("Baq", "SA"), ("Baq", "UCh")}


class TestSection3Examples:
    """§3.1: evaluation semantics on the metro expression."""

    def test_metro_reachability_pairs(self, index):
        result = index.evaluate("(?x, (l1|l2|l5)+, ?y)")
        nodes = {"SA", "UCh", "LH", "BA", "Baq"}
        assert result.pairs == {(a, b) for a in nodes for b in nodes}

    def test_fixed_subject(self, index):
        result = index.evaluate("(Baq, (l1|l2|l5)+, ?y)")
        assert ("Baq", "SA") in result.pairs

    def test_boolean_query(self, index):
        assert len(index.evaluate("(Baq, (l1|l2|l5)+, SA)")) == 1
