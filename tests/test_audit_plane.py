"""The per-request audit plane: lifecycle, exemplars, flight recorder.

The load-bearing invariant is conservation of latency: stage durations
are telescoping differences of one monotonic timeline, so for every
settled query — both serving tiers, cache hits, errors — the reported
stages sum to the end-to-end latency (asserted here within 5%, exact
up to clock-skew clamping).  Around that: histogram exemplars through
the Prometheus exporter, the bounded flight ring (including under
parallel settlement), the ``/debug/flight`` endpoint, close-time gauge
zeroing, and crash context on :class:`WorkerCrashedError`.
"""

from __future__ import annotations

import json
import pickle
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import WorkerCrashedError
from repro.obs.export import prometheus_text
from repro.obs.flight import FlightRecorder
from repro.obs.histogram import LogHistogram
from repro.obs.httpd import TelemetryServer
from repro.obs.lifecycle import STAGE_MARKS, QueryLifecycle
from repro.obs.metrics import Metrics
from repro.obs.querylog import QueryLogWriter, read_query_log
from repro.serve.service import QueryService

WORKLOAD = [
    "(?x, p0, ?y)",
    "(?x, p0/p1, ?y)",
    "(?x, (p0|p2)+, ?y)",
    "(?x, p1*, ?y)",
]

#: The acceptance bound: per settled query, |sum(stages) - e2e| <= 5%.
STAGE_SUM_TOLERANCE = 0.05


def _assert_stages_cover_total(record: dict) -> None:
    total = record["total_seconds"]
    stage_sum = sum(record["stages"].values())
    assert stage_sum == pytest.approx(
        total, rel=STAGE_SUM_TOLERANCE, abs=1e-6
    ), f"stages {record['stages']} do not cover total {total}"


# ----------------------------------------------------------------------
# QueryLifecycle
# ----------------------------------------------------------------------


def test_lifecycle_marks_telescope_exactly():
    life = QueryLifecycle("q1", t=100.0)
    life.mark("admitted", t=100.5)
    life.mark("dequeued", t=101.0)
    life.mark("dispatched", t=101.25)
    life.mark("worker_started", t=101.5)
    life.mark("worker_finished", t=103.5)
    life.mark("settled", t=104.0)
    stages = life.stage_durations()
    assert stages == {
        "admission": 0.5,
        "queue_wait": 0.5,
        "dispatch": 0.25,
        "startup": 0.25,
        "execute": 2.0,
        "settle": 0.5,
    }
    assert sum(stages.values()) == pytest.approx(life.total())
    assert life.total() == pytest.approx(4.0)
    assert life.settled


def test_lifecycle_rejects_out_of_order_and_unknown_marks():
    life = QueryLifecycle("q1")
    life.mark("dequeued")
    with pytest.raises(ValueError):
        life.mark("admitted")   # earlier in the canonical order
    with pytest.raises(ValueError):
        life.mark("dequeued")   # repeated
    with pytest.raises(ValueError):
        life.mark("warp_drive")
    # The failed marks must not have corrupted the timeline.
    assert [name for name, _ in life.marks] == ["submitted", "dequeued"]


def test_lifecycle_allows_skipping_stages():
    """The thread tier never records the serialize/pipe marks and a
    cache hit jumps straight to settled — both must stay legal."""
    life = QueryLifecycle("q-hit", t=10.0)
    life.mark("settled", t=10.001)
    assert life.stage_durations() == {
        "cache_hit": pytest.approx(0.001)
    }


def test_lifecycle_clamps_clock_skew_to_zero():
    life = QueryLifecycle("q1", t=100.0)
    life.mark("worker_started", t=99.9)   # worker stamped before parent
    life.mark("settled", t=100.2)
    stages = life.stage_durations()
    assert all(v >= 0.0 for v in stages.values())
    # The skewed mark is clamped forward at mark time, so the
    # telescoping invariant holds even across misaligned stamps.
    assert sum(stages.values()) == pytest.approx(life.total())
    assert life.total() == pytest.approx(0.2)


def test_lifecycle_process_tier_mark_sequence():
    life = QueryLifecycle("q1", t=0.0)
    for i, stage in enumerate(STAGE_MARKS[1:], start=1):
        life.mark(stage, t=float(i))
    stages = life.stage_durations()
    assert set(stages) == {
        "admission", "queue_wait", "dispatch", "request_serialize",
        "pipe_to_worker", "execute", "reply_transfer", "settle",
    }
    assert sum(stages.values()) == pytest.approx(life.total())
    dump = life.to_dict()
    assert dump["marks"]["settled"] == pytest.approx(life.total())


# ----------------------------------------------------------------------
# FlightRecorder
# ----------------------------------------------------------------------


def test_flight_recorder_bounds_and_counts():
    flight = FlightRecorder(capacity=3)
    for i in range(7):
        flight.record({"query_id": f"q{i}"})
    assert len(flight) == 3
    assert flight.total_recorded == 7
    assert [r["query_id"] for r in flight.records()] == ["q4", "q5", "q6"]
    assert [r["query_id"] for r in flight.records(last=2)] == ["q5", "q6"]
    snap = flight.snapshot()
    assert snap["capacity"] == 3
    assert snap["dropped"] == 4
    assert [r["query_id"] for r in snap["records"]] == ["q4", "q5", "q6"]
    flight.clear()
    assert len(flight) == 0
    assert flight.total_recorded == 7
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_flight_recorder_is_safe_under_parallel_settlement():
    """Many threads appending at once: the ring stays bounded, nothing
    is double-counted, and the retained tail is internally unique."""
    flight = FlightRecorder(capacity=64)
    n_threads, per_thread = 8, 50

    def hammer(tid: int) -> None:
        for i in range(per_thread):
            flight.record({"query_id": f"t{tid}-{i}"})

    threads = [
        threading.Thread(target=hammer, args=(tid,))
        for tid in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert flight.total_recorded == n_threads * per_thread
    records = flight.records()
    assert len(records) == 64
    ids = [r["query_id"] for r in records]
    assert len(set(ids)) == len(ids)


# ----------------------------------------------------------------------
# Histogram exemplars
# ----------------------------------------------------------------------


def test_histogram_retains_last_exemplar_per_bucket():
    hist = LogHistogram()
    hist.observe(0.51, "q1")
    hist.observe(0.52, "q2")     # same bucket: replaces q1
    hist.observe(100.0, "q3")    # far bucket
    hist.observe(0.0, "q4")      # the zero bucket
    hist.observe(0.53)           # unlabelled: must not clear q2
    exemplars = dict(hist.exemplars)
    labels = {label for label, _ in exemplars.values()}
    assert "q2" in labels and "q1" not in labels
    assert "q3" in labels and "q4" in labels
    # bucket_keys aligns with bucket_bounds, zero bucket first.
    keys = hist.bucket_keys()
    bounds = hist.bucket_bounds()
    assert len(keys) == len(bounds)
    assert keys[0] is None and bounds[0][0] == 0.0


def test_histogram_merge_prefers_other_exemplars():
    a, b = LogHistogram(), LogHistogram()
    a.observe(1.0, "old")
    b.observe(1.0, "new")
    a.merge(b)
    labels = {label for label, _ in a.exemplars.values()}
    assert labels == {"new"}
    assert a.count == 2


def test_prometheus_export_renders_openmetrics_exemplars():
    metrics = Metrics()
    metrics.observe("serve.stage.execute", 0.25, exemplar='q"4\\2')
    metrics.observe("serve.stage.execute", 0.26)
    text = prometheus_text(metrics)
    bucket_lines = [
        line for line in text.splitlines()
        if line.startswith("repro_serve_stage_execute_bucket")
        and "# {" in line
    ]
    assert len(bucket_lines) == 1
    line = bucket_lines[0]
    # OpenMetrics shape: ... N # {query_id="..."} value, label escaped.
    assert '# {query_id="q\\"4\\\\2"} 0.25' in line
    # The +Inf bucket and sum/count lines never carry exemplars.
    assert "+Inf" not in line


def test_prometheus_export_without_exemplars_is_unchanged():
    metrics = Metrics()
    metrics.observe("plain", 1.0)
    text = prometheus_text(metrics)
    assert "# {" not in text
    assert "repro_plain_bucket" in text


# ----------------------------------------------------------------------
# Thread tier end-to-end
# ----------------------------------------------------------------------


def test_thread_tier_stage_sum_matches_e2e_for_every_query(kg_index,
                                                           tmp_path):
    log_path = tmp_path / "queries.jsonl"
    metrics = Metrics(span_capacity=512)
    flight = FlightRecorder(32)
    service = QueryService(
        kg_index, workers=2, metrics=metrics, flight=flight,
        cache_size=8, query_log=QueryLogWriter(log_path),
    )
    try:
        for query in WORKLOAD:
            service.evaluate(query, timeout=60)
        hit = service.evaluate(WORKLOAD[0], timeout=60)  # cache hit
        assert hit.stats.cached
    finally:
        service.close()
        service.query_log.close()

    records = flight.records()
    assert len(records) == len(WORKLOAD) + 1
    for record in records:
        _assert_stages_cover_total(record)
    # The miss path decomposes into the canonical thread-tier stages...
    miss = records[0]
    for stage in ("admission", "queue_wait", "dispatch", "startup",
                  "execute", "settle"):
        assert stage in miss["stages"], miss["stages"]
    assert miss["cache_hit"] is False
    assert miss["worker"] in (0, 1)
    assert miss["span_digest"]["spans"] >= 1
    # ...and the hit collapses onto the single cache_hit stage.
    hit_record = records[-1]
    assert hit_record["cache_hit"] is True
    assert set(hit_record["stages"]) == {"cache_hit"}

    # Stage histograms exist, exemplar-linked to real query ids.
    execute = metrics.histogram("serve.stage.execute")
    assert execute is not None and execute.count == len(WORKLOAD)
    ids = {r["query_id"] for r in records}
    for label, _ in execute.exemplars.values():
        assert label in ids
    # Per-worker accounting: busy seconds distributed over the slots
    # equal the execute histogram's total.
    busy = sum(
        metrics.count(f"serve.worker.{i}.busy_seconds") for i in (0, 1)
    )
    assert busy == pytest.approx(execute.total)
    detail = service.stats()["workers_detail"]
    assert sum(w["busy_seconds"] for w in detail) == pytest.approx(busy)
    assert all(0.0 <= w["utilization"] <= 1.0 for w in detail)
    assert service.stats()["flight"]["total_recorded"] == len(records)

    # Query-log schema v2: every line carries the stage decomposition.
    lines = read_query_log(log_path)
    assert len(lines) == len(WORKLOAD) + 1
    for line in lines:
        assert line["schema_version"] == 2
        assert line["backend"]
        assert "cache_hit" in line
        assert line["stages"] and all(
            v >= 0.0 for v in line["stages"].values()
        )
        # v1 fields survive.
        assert {"ts", "query_id", "query", "elapsed",
                "n_results"} <= set(line)
    assert [line["cache_hit"] for line in lines].count(True) == 1


def test_close_zeroes_worker_gauges_but_keeps_busy_counters(kg_index):
    metrics = Metrics()
    metrics.set_gauge("router.misroute_rate", 0.25)
    service = QueryService(kg_index, workers=2, metrics=metrics,
                           cache_size=0)
    try:
        service.evaluate(WORKLOAD[0], timeout=60)
    finally:
        service.close()
    for name, value in metrics.gauges.items():
        if name.startswith("serve.worker."):
            assert value == 0, name
    assert metrics.gauge("router.misroute_rate") == 0.0
    # Counters are cumulative history and must survive close.
    assert metrics.count("serve.worker.0.busy_seconds") \
        + metrics.count("serve.worker.1.busy_seconds") > 0


class _BoomEngine:
    """Engine stub whose every evaluation fails."""

    name = "boom"

    def evaluate(self, query, **kwargs):
        raise RuntimeError("engine exploded")


def test_error_paths_land_in_the_flight_ring(kg_index):
    flight = FlightRecorder(8)
    service = QueryService(kg_index, workers=1, metrics=Metrics(),
                           flight=flight, cache_size=0,
                           engine=_BoomEngine())
    try:
        with pytest.raises(RuntimeError, match="engine exploded"):
            service.evaluate(WORKLOAD[0], timeout=60)
    finally:
        service.close()
    records = flight.records()
    assert len(records) == 1
    assert records[0]["error"] == "RuntimeError"
    assert "engine exploded" in records[0]["error_detail"]
    _assert_stages_cover_total(records[0])


# ----------------------------------------------------------------------
# /debug/flight endpoint
# ----------------------------------------------------------------------


def _get(url: str, timeout: float = 10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


def test_debug_flight_endpoint_serves_the_ring(kg_index):
    metrics = Metrics()
    flight = FlightRecorder(16)
    service = QueryService(kg_index, workers=2, metrics=metrics,
                           flight=flight, cache_size=0)
    try:
        for query in WORKLOAD:
            service.evaluate(query, timeout=60)
        with TelemetryServer(metrics, lock=service.obs_lock,
                             service=service, flight=flight) as httpd:
            status, content_type, body = _get(
                f"{httpd.url}/debug/flight"
            )
            assert status == 200
            assert content_type == "application/json"
            payload = json.loads(body)
            assert payload["capacity"] == 16
            assert payload["total_recorded"] == len(WORKLOAD)
            ids = [r["query_id"] for r in payload["records"]]
            assert len(ids) == len(WORKLOAD)
            # The ids join the exemplars: scrape /metrics and check the
            # exemplar labels all resolve into the flight ring.
            _, _, metrics_text = _get(f"{httpd.url}/metrics")
            import re

            exemplar_ids = set(re.findall(
                r'# \{query_id="([^"]+)"\}', metrics_text
            ))
            assert exemplar_ids and exemplar_ids <= set(ids)
            # The index advertises the endpoint.
            _, _, index_body = _get(httpd.url)
            assert "/debug/flight" in index_body
    finally:
        service.close()


def test_debug_flight_404_without_recorder():
    metrics = Metrics()
    with TelemetryServer(metrics) as httpd:
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(f"{httpd.url}/debug/flight")
        assert info.value.code == 404


def test_httpd_falls_back_to_the_service_flight(kg_index):
    metrics = Metrics()
    flight = FlightRecorder(4)
    service = QueryService(kg_index, workers=1, metrics=metrics,
                           flight=flight, cache_size=0)
    try:
        service.evaluate(WORKLOAD[0], timeout=60)
        httpd = TelemetryServer(metrics, lock=service.obs_lock,
                                service=service)  # no flight= passed
        assert httpd.render_flight()["total_recorded"] == 1
    finally:
        service.close()


# ----------------------------------------------------------------------
# WorkerCrashedError flight context
# ----------------------------------------------------------------------


def test_worker_crashed_error_pickles_with_flight_context():
    context = [{"query_id": "q7", "stages": {"execute": 0.5}}]
    err = WorkerCrashedError("repro-serve-proc-1", exitcode=-9,
                             flight=context)
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, WorkerCrashedError)
    assert clone.worker == "repro-serve-proc-1"
    assert clone.exitcode == -9
    assert clone.flight == context
    assert WorkerCrashedError("w").flight == []
