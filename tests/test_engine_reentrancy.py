"""The engine-level re-entrancy contract, without the serving layer.

PR 4's tentpole rests on ``RingRPQEngine.evaluate`` being safe to call
from many threads on one shared instance: every per-call mutable
(budget, stats, metrics registry, forbidden-node set, prepare memo)
travels in a private ``_EvalContext``, and the only cross-query state
— the prepare LRU — is lock-guarded.  These tests exercise that
contract directly with raw threads, including the historical bug
class: instrumentation and forbidden sets leaking between interleaved
evaluations.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import RingRPQEngine

pytestmark = pytest.mark.concurrency


def _race(n_threads, fn):
    """Run ``fn(i)`` on n threads through a start barrier; re-raise
    the first worker error."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def runner(i):
        try:
            barrier.wait()
            fn(i)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestSharedEngineThreads:
    def test_same_query_all_threads(self, kg_index):
        engine = RingRPQEngine(kg_index)
        query = "(?x, (p0|p1)*, ?y)"
        expected = engine.evaluate(query, timeout=60).pairs
        results = [None] * 8

        def work(i):
            results[i] = engine.evaluate(query, timeout=60).pairs

        _race(8, work)
        assert all(pairs == expected for pairs in results)

    def test_distinct_queries_keep_distinct_counters(self, kg_index):
        """Interleaved evaluations must not cross-pollute stats: each
        thread's counter record equals its query's sequential record
        (prepare LRU off — cache warmth is scheduling, not work)."""
        engine = RingRPQEngine(kg_index, prepare_cache_size=0)
        queries = ["(?x, p0, ?y)", "(?x, p1+, ?y)", "(?x, (p0|p2)*, ?y)",
                   "(?x, ^p1/p0, ?y)"]
        expected = {
            q: engine.evaluate(q, timeout=60).stats.operation_counts()
            for q in queries
        }
        outcomes = [None] * 8

        def work(i):
            q = queries[i % len(queries)]
            outcomes[i] = (q, engine.evaluate(
                q, timeout=60).stats.operation_counts())

        _race(8, work)
        for q, counters in outcomes:
            assert counters == expected[q], q

    def test_forbidden_nodes_stay_private(self, kg_graph, kg_index):
        """One thread evaluates with forbidden intermediates, others
        without; before the context refactor the forbidden set lived
        on the engine and leaked into concurrent evaluations."""
        engine = RingRPQEngine(kg_index)
        query = "(?x, (p0|p1)*, ?y)"
        forbidden = kg_graph.nodes[:40]
        unrestricted = engine.evaluate(query, timeout=60).pairs
        restricted = engine.evaluate(query, timeout=60,
                                     forbidden_nodes=forbidden).pairs
        assert restricted <= unrestricted

        results = [None] * 8

        def work(i):
            if i % 2:
                results[i] = ("restricted", engine.evaluate(
                    query, timeout=60, forbidden_nodes=forbidden).pairs)
            else:
                results[i] = ("unrestricted", engine.evaluate(
                    query, timeout=60).pairs)

        _race(8, work)
        for kind, pairs in results:
            want = restricted if kind == "restricted" else unrestricted
            assert pairs == want, kind

    def test_prepare_lru_warm_and_cold_agree(self, kg_index):
        """The lock-guarded prepare LRU is the one shared mutable:
        concurrent warm/cold compilations of the same expressions must
        not corrupt each other or the answers."""
        engine = RingRPQEngine(kg_index, prepare_cache_size=2)
        queries = ["(?x, p0/p1, ?y)", "(?x, p2|p3, ?y)",
                   "(?x, p4*, ?y)", "(?x, ^p0, ?y)"]
        expected = {q: engine.evaluate(q, timeout=60).pairs
                    for q in queries}

        def work(i):
            for q in queries:
                assert engine.evaluate(q, timeout=60).pairs == expected[q]

        _race(6, work)

    def test_cancellation_is_per_call(self, kg_index):
        """A cancel token passed to one call must not interrupt the
        others sharing the engine."""
        engine = RingRPQEngine(kg_index)
        query = "(?x, (p0|p1)*, ?y)"
        expected = engine.evaluate(query, timeout=60).pairs
        cancel = threading.Event()
        cancel.set()
        results = [None] * 6

        def work(i):
            if i == 0:
                results[i] = engine.evaluate(query, timeout=60,
                                             cancel=cancel)
            else:
                results[i] = engine.evaluate(query, timeout=60)

        _race(6, work)
        assert results[0].stats.cancelled
        for result in results[1:]:
            assert not result.stats.cancelled
            assert result.pairs == expected
