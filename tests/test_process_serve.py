"""The process-pool serving tier (``repro.serve.pool``).

The load-bearing property is the cross-process differential: a query
served by :class:`ProcessQueryService` — evaluated in a worker process
against the shared-memory snapshot — must be *bit-identical* to the
in-process engine over the built index, pairs AND operation counters
(both sides pin ``prepare_cache_size=0`` so counter streams line up).
Around that: the full harness contract through the pool, worker-crash
recovery, spawn-method smoke, and segment/gauge lifecycle.
"""

from __future__ import annotations

import pathlib

import pytest

from tests.harness import check_query, iter_corpus
from repro.core.engine import RingRPQEngine
from repro.errors import WorkerCrashedError
from repro.obs.metrics import Metrics
from repro.ring.builder import RingIndex
from repro.serve.pool import ProcessQueryService

pytestmark = pytest.mark.concurrency

WORKLOAD = [
    "(?x, p0, ?y)",
    "(?x, ^p1, ?y)",
    "(?x, p0/p1, ?y)",
    "(?x, (p0|p2)+, ?y)",
    "(?x, p3*/p1, ?y)",
    "(?x, p2?/^p0, ?y)",
    "(?x, (p0/p1)|(p2/p3), ?y)",
    "(?x, p1+, ?y)",
]


def _sequential(index, queries, limit=None):
    engine = RingRPQEngine(index, prepare_cache_size=0)
    out = []
    for query in queries:
        result = engine.evaluate(query, timeout=60, limit=limit)
        out.append((sorted(result.pairs),
                    result.stats.operation_counts(),
                    result.stats.truncated))
    return out


def _pool(index, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("cache_size", 0)
    kwargs.setdefault("engine_kwargs", {"prepare_cache_size": 0})
    return ProcessQueryService(index, **kwargs)


class _ServiceBackend:
    """Adapter exposing the harness's engine calling convention
    (explicit ``timeout``/``limit`` parameters) over a service."""

    def __init__(self, service):
        self._service = service

    def evaluate(self, query, timeout=None, limit=None):
        return self._service.evaluate(query, timeout=timeout, limit=limit)


def test_differential_vs_in_process(kg_index):
    expected = _sequential(kg_index, WORKLOAD)
    with _pool(kg_index) as service:
        results = service.run(WORKLOAD, timeout=60)
    got = [(sorted(r.pairs), r.stats.operation_counts(),
            r.stats.truncated) for r in results]
    assert got == expected


def test_differential_with_limit(kg_index):
    expected = _sequential(kg_index, WORKLOAD, limit=25)
    with _pool(kg_index) as service:
        results = service.run(WORKLOAD, timeout=60, limit=25)
    got = [(sorted(r.pairs), r.stats.operation_counts(),
            r.stats.truncated) for r in results]
    assert got == expected


def test_harness_contract_over_corpus():
    """The full differential contract (oracle equivalence, limit
    boundaries, budget tagging), served through worker processes, for
    every regression-corpus case."""
    ran = 0
    for name, graph, queries in iter_corpus():
        index = RingIndex.from_graph(graph)
        with _pool(index) as service:
            engines = {
                "ring": RingRPQEngine(index),
                "process-pool": _ServiceBackend(service),
            }
            for query in queries:
                check_query(graph, query, engines=engines,
                            context=f"corpus:{name}")
                ran += 1
    assert ran > 0


def test_spawn_start_method(kg_index):
    """Spawn workers re-import the package and attach the segment by
    name — no inherited state."""
    expected = _sequential(kg_index, WORKLOAD[:2])
    with _pool(kg_index, workers=1, start_method="spawn") as service:
        assert service.stats()["pool"]["start_method"] == "spawn"
        results = service.run(WORKLOAD[:2], timeout=60)
    got = [(sorted(r.pairs), r.stats.operation_counts(),
            r.stats.truncated) for r in results]
    assert got == expected


def test_worker_crash_respawns_and_types_the_error(kg_index):
    obs = Metrics()
    service = _pool(kg_index, metrics=obs)
    try:
        service.evaluate(WORKLOAD[0], timeout=60)  # warm: all live
        for slot in service._slots:
            slot.proc.kill()
            slot.proc.join(5.0)
        # A query dispatched at a not-yet-detected dead worker fails
        # once with the typed error; the pool respawns behind it, so a
        # resubmit lands on a live worker.
        result = None
        for _ in range(3):
            try:
                result = service.evaluate(WORKLOAD[1], timeout=60)
                break
            except WorkerCrashedError as err:
                assert "repro-serve-proc-" in str(err)
        assert result is not None
        (pairs, counts, truncated), = _sequential(
            kg_index, WORKLOAD[1:2]
        )
        assert sorted(result.pairs) == pairs
        stats = service.stats()["pool"]
        assert stats["restarts"] >= 2
        assert stats["live_workers"] == 2
        assert obs.count("serve.pool.worker_crashes") >= 2
        assert obs.gauge("serve.pool.restarts") == stats["restarts"]
    finally:
        service.close()


def test_cancel_midflight_is_well_formed(kg_index):
    """A cancel racing a running query yields either a ``cancelled``
    partial or the complete answer — never a silent wrong set."""
    (pairs, _, _), = _sequential(kg_index, ["(?x, (p0|p1|p2)*, ?y)"])
    with _pool(kg_index) as service:
        ticket = service.submit("(?x, (p0|p1|p2)*, ?y)", timeout=60)
        service.cancel(ticket.query_id)
        result = ticket.result()
    if result.stats.cancelled:
        assert set(result.pairs) <= set(pairs)
    else:
        assert sorted(result.pairs) == pairs


def test_close_releases_segment_and_zeroes_gauges(kg_index):
    obs = Metrics()
    service = _pool(kg_index, metrics=obs)
    name = service._shared.name
    seg = pathlib.Path("/dev/shm") / name
    service.evaluate(WORKLOAD[0], timeout=60)
    assert obs.gauge("serve.pool.workers") == 2
    assert obs.gauge("serve.pool.shm_bytes") == service._shared.nbytes
    if seg.parent.is_dir():
        assert seg.exists()
    service.close()
    service.close()  # idempotent
    if seg.parent.is_dir():
        assert not seg.exists(), "shared segment leaked after close()"
    for gauge in ("serve.pool.workers", "serve.pool.restarts",
                  "serve.pool.shm_bytes", "serve.queue_depth",
                  "serve.inflight"):
        assert obs.gauge(gauge) == 0, gauge
    assert all(
        slot is None or not slot.proc.is_alive()
        for slot in service._slots
    )


def test_stats_reports_pool_axis(kg_index):
    with _pool(kg_index) as service:
        stats = service.stats()["pool"]
        assert stats["kind"] == "processes"
        assert stats["live_workers"] == 2
        assert stats["shm_bytes"] > 0
        assert stats["restarts"] == 0


# ----------------------------------------------------------------------
# Per-request audit plane through the process tier
# ----------------------------------------------------------------------


def test_process_tier_stage_decomposition_covers_e2e(kg_index):
    """Every settled query's stage durations sum to its end-to-end
    latency (within 5%), and the process tier reports nonzero
    serialize/pipe stages — the IPC cost the thread tier never pays."""
    from repro.obs.flight import FlightRecorder

    flight = FlightRecorder(32)
    obs = Metrics()
    with _pool(kg_index, metrics=obs, flight=flight) as service:
        for query in WORKLOAD:
            service.evaluate(query, timeout=60)
    records = flight.records()
    assert len(records) == len(WORKLOAD)
    wire = ("request_serialize", "pipe_to_worker", "reply_transfer",
            "execute")
    for record in records:
        stages = record["stages"]
        total = record["total_seconds"]
        assert sum(stages.values()) == pytest.approx(
            total, rel=0.05, abs=1e-6
        ), stages
        # Every wire stage was recorded.  A single record may report
        # 0.0 for a pipe stage — the worker can stamp worker_started
        # before the parent's post-send() mark lands, and the clamp
        # attributes the race to the neighbouring stage — so the
        # nonzero assertion is aggregate, below.
        for stage in wire:
            assert stages[stage] >= 0.0
    for stage in wire:
        assert sum(r["stages"][stage] for r in records) > 0.0, stage
    # The same decomposition reached the service histograms.
    for stage in ("request_serialize", "pipe_to_worker",
                  "reply_transfer", "execute"):
        hist = obs.histogram(f"serve.stage.{stage}")
        assert hist is not None and hist.count == len(WORKLOAD)
        assert hist.total > 0.0


def test_crash_respawn_cycle_in_prometheus_export(kg_index):
    """``serve.pool.*`` across a crash→respawn cycle, as a scraper
    sees it: crash counter rises, live-worker gauge recovers to full
    strength, and close() zeroes the gauges but not the counters."""
    from repro.obs.export import prometheus_text

    obs = Metrics()
    service = _pool(kg_index, metrics=obs)
    try:
        service.evaluate(WORKLOAD[0], timeout=60)
        for slot in service._slots:
            slot.proc.kill()
            slot.proc.join(5.0)
        result = None
        for _ in range(3):
            try:
                result = service.evaluate(WORKLOAD[1], timeout=60)
                break
            except WorkerCrashedError:
                pass
        assert result is not None
        text = prometheus_text(obs)
        lines = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if not line.startswith("#")
        )
        assert float(lines["repro_serve_pool_workers"]) == 2
        assert float(lines["repro_serve_pool_restarts"]) >= 2
        assert float(lines["repro_serve_pool_worker_crashes_total"]) >= 2
    finally:
        service.close()
    text = prometheus_text(obs)
    lines = dict(
        line.rsplit(" ", 1)
        for line in text.splitlines()
        if not line.startswith("#")
    )
    # Gauges zeroed on close; the crash counter survives as history.
    assert float(lines["repro_serve_pool_workers"]) == 0
    assert float(lines["repro_serve_pool_restarts"]) == 0
    assert float(lines["repro_serve_pool_worker_crashes_total"]) >= 2


def test_worker_crash_error_carries_flight_context(kg_index):
    from repro.obs.flight import FlightRecorder

    flight = FlightRecorder(8)
    service = _pool(kg_index, metrics=Metrics(), flight=flight)
    try:
        service.evaluate(WORKLOAD[0], timeout=60)
        for slot in service._slots:
            slot.proc.kill()
            slot.proc.join(5.0)
        crash = None
        for _ in range(3):
            try:
                service.evaluate(WORKLOAD[1], timeout=60)
                break
            except WorkerCrashedError as err:
                crash = err
        assert crash is not None
        # The error ships the ring's tail: the queries that settled
        # before the death, with their stage decompositions.
        assert crash.flight
        assert any(r["query_id"] == "q1" for r in crash.flight)
        assert all("stages" in r for r in crash.flight)
    finally:
        service.close()
