"""Tests for the fixed-capacity ring-buffer time series.

The module-level invariants (documented on :class:`TimeSeries`) are
pinned here both by example and by a hypothesis property test driving
random append sequences against a plain-list reference model:

* ``len(series) == min(capacity, total_appended)`` — retention never
  exceeds capacity, never undercounts what was appended;
* :meth:`points` is exactly the last ``len`` appended points, oldest
  first, in append order;
* ``min``/``max``/``last``/``mean`` agree with the retained points.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.timeseries import TimeSeries


class TestTimeSeriesBasics:
    def test_empty(self):
        ts = TimeSeries("m", capacity=4)
        assert len(ts) == 0
        assert ts.points() == []
        assert ts.values() == []
        assert ts.last() is None
        assert ts.last_point() is None
        assert ts.min() is None and ts.max() is None and ts.mean() is None
        assert ts.percentile(50.0) is None
        assert ts.summary() == {"count": 0, "total_appended": 0}

    def test_append_below_capacity(self):
        ts = TimeSeries("m", capacity=4)
        ts.append(1.0, 10.0)
        ts.append(2.0, 30.0)
        ts.append(3.0, 20.0)
        assert len(ts) == 3
        assert ts.total_appended == 3
        assert ts.points() == [(1.0, 10.0), (2.0, 30.0), (3.0, 20.0)]
        assert ts.last() == 20.0
        assert ts.last_point() == (3.0, 20.0)
        assert ts.min() == 10.0 and ts.max() == 30.0
        assert ts.mean() == pytest.approx(20.0)

    def test_wraparound_evicts_oldest(self):
        ts = TimeSeries("m", capacity=3)
        for i in range(7):
            ts.append(float(i), float(i * i))
        # Only the last 3 of the 7 appends remain, oldest first.
        assert len(ts) == 3
        assert ts.total_appended == 7
        assert ts.points() == [(4.0, 16.0), (5.0, 25.0), (6.0, 36.0)]
        assert ts.min() == 16.0 and ts.max() == 36.0 and ts.last() == 36.0

    def test_capacity_one(self):
        ts = TimeSeries("m", capacity=1)
        ts.append(1.0, 5.0)
        ts.append(2.0, 7.0)
        assert ts.points() == [(2.0, 7.0)]
        assert ts.min() == ts.max() == ts.last() == 7.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TimeSeries("m", capacity=0)

    def test_percentile_bounds_and_interpolation(self):
        ts = TimeSeries("m", capacity=8)
        for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            ts.append(float(i), v)
        assert ts.percentile(0.0) == 1.0
        assert ts.percentile(100.0) == 4.0
        assert ts.percentile(50.0) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            ts.percentile(101.0)
        with pytest.raises(ValueError):
            ts.percentile(-1.0)

    def test_to_dict_tail_bound(self):
        ts = TimeSeries("m", capacity=100)
        for i in range(50):
            ts.append(float(i), float(i))
        dump = ts.to_dict(max_points=10)
        assert dump["name"] == "m"
        assert dump["capacity"] == 100
        assert dump["count"] == 50
        assert len(dump["points"]) == 10
        # The tail keeps the most recent points.
        assert dump["points"][-1] == [49.0, 49.0]
        assert dump["points"][0] == [40.0, 40.0]
        full = ts.to_dict(max_points=None)
        assert len(full["points"]) == 50


@pytest.mark.hypothesis
class TestTimeSeriesProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=16),
        values=st.lists(
            st.floats(allow_nan=False, allow_infinity=False,
                      width=32),
            max_size=64,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_list_reference_model(self, capacity, values):
        ts = TimeSeries("m", capacity=capacity)
        reference: list[tuple[float, float]] = []
        for i, v in enumerate(values):
            ts.append(float(i), v)
            reference.append((float(i), float(v)))

        retained = reference[-capacity:]

        # Capacity bound and append accounting.
        assert len(ts) == min(capacity, len(values))
        assert ts.total_appended == len(values)

        # Ordering: exactly the last len(ts) points, oldest first.
        assert ts.points() == retained
        assert ts.values() == [v for _, v in retained]

        # Aggregates agree with the retained window.
        if retained:
            window = [v for _, v in retained]
            assert ts.last() == window[-1]
            assert ts.last_point() == retained[-1]
            assert ts.min() == min(window)
            assert ts.max() == max(window)
            assert math.isclose(
                ts.mean(), sum(window) / len(window),
                rel_tol=1e-9, abs_tol=1e-9,
            )
            summary = ts.summary()
            assert summary["count"] == len(window)
            assert summary["min"] == min(window)
            assert summary["max"] == max(window)
        else:
            assert ts.last() is None
            assert ts.min() is None and ts.max() is None
