"""Tests for the §6 extensions: seekable RPQ relations + node filters."""

from __future__ import annotations

import random

import pytest

from repro.core.leapfrog import RPQRelation, join_subjects
from repro.graph.generators import chain_graph, random_graph
from repro.ring.builder import RingIndex
from repro.testing import brute_force_rpq


@pytest.fixture(scope="module")
def setup():
    graph = random_graph(n_nodes=16, n_edges=50, n_predicates=3, seed=13)
    index = RingIndex.from_graph(graph)
    return graph, index


def _expected_ids(graph, index, expr_text):
    pairs = brute_force_rpq(graph, f"(?x, {expr_text}, ?y)")
    d = index.dictionary
    return sorted({
        (d.node_id(s), d.node_id(o)) for s, o in pairs
    })


class TestRPQRelation:
    @pytest.mark.parametrize(
        "expr", ["p0", "p0/p1", "p0+", "p1*", "^p2", "p0|p2", "p0/p1*"]
    )
    def test_iter_pairs_matches_oracle(self, setup, expr):
        graph, index = setup
        relation = RPQRelation(index, expr)
        assert list(relation.iter_pairs()) == _expected_ids(
            graph, index, expr
        )

    def test_seek_subject_semantics(self, setup):
        graph, index = setup
        relation = RPQRelation(index, "p0/p1")
        subjects = sorted({
            s for s, _ in _expected_ids(graph, index, "p0/p1")
        })
        # seek from 0 and from each subject's successor
        assert relation.seek_subject(0) == (subjects[0] if subjects
                                            else None)
        for a, b in zip(subjects, subjects[1:]):
            assert relation.seek_subject(a + 1) == b
        if subjects:
            assert relation.seek_subject(subjects[-1] + 1) is None

    def test_seek_object(self, setup):
        graph, index = setup
        relation = RPQRelation(index, "p0+")
        pairs = _expected_ids(graph, index, "p0+")
        by_subject = {}
        for s, o in pairs:
            by_subject.setdefault(s, []).append(o)
        for s, objects in by_subject.items():
            assert relation.seek_object(s, 0) == objects[0]
            assert relation.seek_object(s, objects[-1] + 1) is None
            for o in objects:
                assert relation.seek_object(s, o) == o

    def test_nullable_relation(self, setup):
        _, index = setup
        relation = RPQRelation(index, "p0*")
        # every node is a subject via the empty path
        assert relation.seek_subject(0) == 0
        assert relation.seek_object(3, 3) == 3

    def test_accepts_ast(self, setup):
        from repro.automata.parser import parse_regex

        _, index = setup
        relation = RPQRelation(index, parse_regex("p0"))
        assert relation.seek_subject(0) is not None


class TestJoin:
    def test_join_is_intersection(self, setup):
        graph, index = setup
        r1 = RPQRelation(index, "p0")
        r2 = RPQRelation(index, "p1+")
        expected = sorted(
            {s for s, _ in _expected_ids(graph, index, "p0")}
            & {s for s, _ in _expected_ids(graph, index, "p1+")}
        )
        assert join_subjects([r1, r2]) == expected

    def test_join_three_way(self, setup):
        graph, index = setup
        exprs = ["p0", "p1|p2", "(p0|p1)/p2*"]
        relations = [RPQRelation(index, e) for e in exprs]
        expected = None
        for e in exprs:
            subjects = {s for s, _ in _expected_ids(graph, index, e)}
            expected = subjects if expected is None else expected & subjects
        assert join_subjects(relations) == sorted(expected)

    def test_join_empty_cases(self, setup):
        _, index = setup
        assert join_subjects([]) == []
        empty = RPQRelation(index, "nothere")
        some = RPQRelation(index, "p0")
        assert join_subjects([empty, some]) == []


class TestTriplePatternRelation:
    def test_seek_subject_unbound_object(self, setup):
        from repro.core.leapfrog import TriplePatternRelation

        graph, index = setup
        relation = TriplePatternRelation(index, "p0")
        d = index.dictionary
        expected = sorted({
            d.node_id(s) for s, p, _ in graph.completion() if p == "p0"
        })
        assert list(relation.iter_subjects()) == expected

    def test_seek_subject_bound_object(self, setup):
        from repro.core.leapfrog import TriplePatternRelation

        graph, index = setup
        d = index.dictionary
        completed = graph.completion()
        some_object = next(o for _, p, o in completed if p == "p1")
        relation = TriplePatternRelation(index, "p1", some_object)
        expected = sorted({
            d.node_id(s) for s, p, o in completed
            if p == "p1" and o == some_object
        })
        assert list(relation.iter_subjects()) == expected

    def test_seek_object(self, setup):
        from repro.core.leapfrog import TriplePatternRelation

        graph, index = setup
        d = index.dictionary
        relation = TriplePatternRelation(index, "p0")
        for s, p, o in graph.completion():
            if p != "p0":
                continue
            oid = d.node_id(o)
            assert relation.seek_object(d.node_id(s), oid) == oid

    def test_unknown_vocabulary(self, setup):
        from repro.core.leapfrog import TriplePatternRelation

        _, index = setup
        assert TriplePatternRelation(index, "ghost").seek_subject() is None
        assert TriplePatternRelation(
            index, "p0", "ghost"
        ).seek_subject() is None

    def test_mixed_join_with_rpq(self, setup):
        """The §6 scenario: join a triple pattern with an RPQ relation."""
        from repro.core.leapfrog import TriplePatternRelation

        graph, index = setup
        d = index.dictionary
        pattern = TriplePatternRelation(index, "p0")
        rpq = RPQRelation(index, "p1+")
        got = join_subjects([pattern, rpq])
        expected = sorted(
            {d.node_id(s) for s, p, _ in graph.completion() if p == "p0"}
            & {s for s, _ in _expected_ids(graph, index, "p1+")}
        )
        assert got == expected


class TestForbiddenNodes:
    def test_blocks_intermediate(self):
        index = RingIndex.from_graph(chain_graph(6))
        blocked = index.evaluate(
            "(n0, next+, ?y)", forbidden_nodes=["n3"]
        )
        assert blocked.pairs == {("n0", "n1"), ("n0", "n2")}

    def test_blocks_endpoint(self):
        index = RingIndex.from_graph(chain_graph(4))
        result = index.evaluate("(?x, next, ?y)", forbidden_nodes=["n2"])
        assert ("n1", "n2") not in result.pairs
        assert ("n2", "n3") not in result.pairs
        assert ("n0", "n1") in result.pairs

    def test_boolean_with_forbidden(self):
        index = RingIndex.from_graph(chain_graph(5))
        assert index.evaluate("(n0, next+, n4)")
        assert not index.evaluate(
            "(n0, next+, n4)", forbidden_nodes=["n2"]
        )

    def test_forbidden_is_per_call(self):
        index = RingIndex.from_graph(chain_graph(4))
        index.evaluate("(n0, next+, ?y)", forbidden_nodes=["n2"])
        # next call without the kwarg must see the full graph again
        assert ("n0", "n4") in index.evaluate("(n0, next+, ?y)").pairs

    def test_unknown_forbidden_label_ignored(self):
        index = RingIndex.from_graph(chain_graph(3))
        result = index.evaluate(
            "(n0, next+, ?y)", forbidden_nodes=["ghost"]
        )
        assert ("n0", "n3") in result.pairs

    def test_matches_filtered_oracle(self):
        graph = random_graph(n_nodes=10, n_edges=30, n_predicates=2,
                             seed=5)
        index = RingIndex.from_graph(graph)
        rng = random.Random(8)
        forbidden = set(rng.sample(graph.nodes, 2))
        for expr in ["p0+", "(p0|p1)*", "p0/p1"]:
            got = index.evaluate(
                f"(?x, {expr}, ?y)", forbidden_nodes=forbidden
            ).pairs
            # oracle: evaluate on the graph with forbidden nodes removed
            filtered = type(graph)(
                [t for t in graph
                 if t[0] not in forbidden and t[2] not in forbidden]
            )
            expected = {
                (s, o)
                for s, o in brute_force_rpq(filtered, f"(?x, {expr}, ?y)")
                if s not in forbidden and o not in forbidden
            }
            assert got == expected, expr
