"""Tests for Thompson's construction and the bit-parallel simulators."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.bitparallel import (
    ChunkedTransitionTable,
    ForwardSimulator,
    ReverseSimulator,
)
from repro.automata.glushkov import build_glushkov
from repro.automata.parser import parse_regex
from repro.automata.thompson import build_thompson
from repro.graph.model import inverse_label


class TestThompson:
    @pytest.mark.parametrize(
        "source,accepted,rejected",
        [
            ("a", ["a"], ["", "aa"]),
            ("a*", ["", "aaa"], ["b"]),
            ("a/b|c", ["ab", "c"], ["a", "bc"]),
            ("(a|b)+/c?", ["a", "abc", "bb"], ["", "c"]),
            ("ε", [""], ["a"]),
            ("a?", ["", "a"], ["aa"]),
        ],
    )
    def test_accepts(self, source, accepted, rejected):
        nfa = build_thompson(parse_regex(source))
        for word in accepted:
            assert nfa.accepts(list(word)), (source, word)
        for word in rejected:
            assert not nfa.accepts(list(word)), (source, word)

    def test_no_epsilon_and_reachable(self):
        nfa = build_thompson(parse_regex("(a|b)*/c"))
        # all states reachable from 0 by construction; delta only has
        # symbol-labeled transitions
        seen = {0}
        frontier = [0]
        while frontier:
            q = frontier.pop()
            for _, target in nfa.successors(q):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        assert seen == set(range(nfa.num_states))

    def test_initial_has_no_incoming(self):
        for source in ["a*", "(a/b)+", "a|b?"]:
            nfa = build_thompson(parse_regex(source))
            targets = {t for q in range(nfa.num_states)
                       for _, t in nfa.successors(q)}
            assert nfa.initial not in targets


class TestChunkedTable:
    def test_matches_direct_or(self):
        masks = [0b0001, 0b0110, 0b1000, 0b0011, 0b1111]
        for chunk_bits in (1, 2, 3, 13):
            table = ChunkedTransitionTable(masks, chunk_bits)
            for x in range(1 << len(masks)):
                expected = 0
                for i in range(len(masks)):
                    if (x >> i) & 1:
                        expected |= masks[i]
                assert table[x] == expected, (chunk_bits, x)

    def test_table_entries_bound(self):
        masks = [1] * 20
        table = ChunkedTransitionTable(masks, chunk_bits=4)
        # 5 chunks x 2^4 entries
        assert table.table_entries() == 5 * 16

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            ChunkedTransitionTable([1], chunk_bits=0)

    def test_empty_masks(self):
        table = ChunkedTransitionTable([])
        assert table[0] == 0


class TestSimulators:
    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_forward_reverse_agree(self, data):
        literals = "ab"

        def gen(d):
            kind = data.draw(st.sampled_from(
                ["atom", "concat", "union", "star", "plus", "opt"]
                if d < 2 else ["atom"]
            ))
            if kind == "atom":
                return data.draw(st.sampled_from(list(literals)))
            if kind == "concat":
                return f"{gen(d + 1)}/{gen(d + 1)}"
            if kind == "union":
                return f"({gen(d + 1)}|{gen(d + 1)})"
            if kind == "star":
                return f"({gen(d + 1)})*"
            if kind == "plus":
                return f"({gen(d + 1)})+"
            return f"({gen(d + 1)})?"

        source = gen(0)
        ast = parse_regex(source)
        automaton = build_glushkov(ast)
        masks = automaton.b_masks_symbolic()
        forward = ForwardSimulator(automaton, masks)
        reverse = ReverseSimulator(automaton, masks)
        nfa = build_thompson(ast)
        reversed_aut = build_glushkov(ast.reverse())
        rev_fwd = ForwardSimulator(
            reversed_aut, reversed_aut.b_masks_symbolic()
        )
        for length in range(4):
            for word in itertools.product(literals, repeat=length):
                w = list(word)
                expected = nfa.accepts(w)
                assert forward.accepts(w) == expected, (source, w)
                assert reverse.accepts(w) == expected, (source, w)
                mirrored = [inverse_label(c) for c in reversed(w)]
                assert rev_fwd.accepts(mirrored) == expected, (source, w)

    def test_step_prefiltered_matches_step(self):
        automaton = build_glushkov(parse_regex("a/(b*)/b"))
        masks = automaton.b_masks_symbolic()
        reverse = ReverseSimulator(automaton, masks)
        for d in range(1 << automaton.num_states):
            for symbol in "ab":
                filtered = d & masks.get(symbol, 0)
                expected = reverse.step(d, symbol)
                if filtered:
                    assert reverse.step_prefiltered(filtered) == expected
                else:
                    assert expected == 0

    def test_unknown_symbol_kills_run(self):
        automaton = build_glushkov(parse_regex("a"))
        forward = ForwardSimulator(automaton, automaton.b_masks_symbolic())
        assert forward.step(forward.start(), "zzz") == 0

    def test_chunk_split_equivalence(self):
        source = "a/(b|a)*/b/a?/(a/b)+"
        automaton = build_glushkov(parse_regex(source))
        masks = automaton.b_masks_symbolic()
        wide = ForwardSimulator(automaton, masks, chunk_bits=32)
        narrow = ForwardSimulator(automaton, masks, chunk_bits=2)
        for word in itertools.product("ab", repeat=5):
            assert wide.accepts(list(word)) == narrow.accepts(list(word))
