"""Corpus replay through the cross-backend differential harness.

Every corpus case — the paper's examples, the generated pattern set,
and any hypothesis-shrunk regressions saved under ``tests/corpus/`` —
runs through the ring engine, the sparse-matrix engine, the cost-model
router and the naive product-BFS baseline, asserting the full harness
contract: oracle equivalence, limit-boundary truncation, and budget
tagging (see ``tests/harness.py``).
"""

from __future__ import annotations

import pytest

pytest.importorskip(
    "scipy", reason="the matrix/routed harness backends need scipy",
    exc_type=ImportError,
)

from tests.harness import build_engines, check_query, iter_corpus
from repro.baselines.registry import make_engine
from repro.graph.generators import random_graph
from repro.obs.explain import explain_analyze
from repro.ring.builder import RingIndex

_CASES = [
    pytest.param(graph, query, id=f"{name}:{query}")
    for name, graph, queries in iter_corpus()
    for query in queries
]

# Engines are rebuilt per corpus *graph*, not per query; cache by the
# graph object (corpus iteration yields one Graph per file).
_ENGINE_CACHE: dict = {}


def _engines_for(graph):
    key = id(graph)
    if key not in _ENGINE_CACHE:
        _ENGINE_CACHE[key] = (
            build_engines(RingIndex.from_graph(graph)),
            graph.completion(),
        )
    return _ENGINE_CACHE[key]


@pytest.mark.parametrize("graph, query", _CASES)
def test_corpus_case(graph, query):
    engines, completed = _engines_for(graph)
    check_query(
        graph, query, engines=engines, completed=completed,
        context="corpus",
    )


def test_corpus_not_empty():
    """The harness must actually be exercising something."""
    assert len(_CASES) >= 10


def test_routed_explain_analyze_reports_backend():
    """EXPLAIN ANALYZE through the router names the chosen backend and
    pairs its predicted seconds with the measured run."""
    graph = random_graph(n_nodes=60, n_edges=240, n_predicates=5, seed=2)
    index = RingIndex.from_graph(graph)
    routed = make_engine("routed", index)
    for query in ("(?x, p1/p2*, ?y)", "(n1, (p0|p3)+, ?y)"):
        report = explain_analyze(index, query, timeout=30, engine=routed)
        routing = report.routing()
        assert routing is not None
        assert routing["backend"] in ("ring", "matrix")
        # The chosen backend is the one that actually ran.
        assert report.profile.stats.backend == routing["backend"]
        assert routing["predicted_seconds"] > 0
        assert routing["actual_seconds"] == report.profile.stats.elapsed
        # Both sides of the est-vs-actual comparison surface in the
        # rendered report too.
        text = report.format()
        assert "routing: chose" in text
        assert "est/actual" in text
        as_dict = report.to_dict()
        assert as_dict["routing"]["backend"] == routing["backend"]
        assert as_dict["backend"] == routing["backend"]


def test_matrix_explain_lists_step_matrices():
    graph = random_graph(n_nodes=30, n_edges=90, n_predicates=4, seed=5)
    index = RingIndex.from_graph(graph)
    matrix = make_engine("matrix", index)
    plan = matrix.explain("(?x, p0/p1*, ?y)")
    assert plan["shape"] == "vv"
    assert plan["nfa_states"] == 3
    assert set(plan["step_matrix_nnz"]) <= {1, 2}
    assert all(nnz > 0 for nnz in plan["step_matrix_nnz"].values())
