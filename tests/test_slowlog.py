"""Tests for the bounded slow-query log and its engine integration."""

from __future__ import annotations

import json

import pytest

from repro.core.engine import RingRPQEngine
from repro.obs.metrics import Metrics
from repro.obs.slowlog import SlowQueryLog


class TestRetention:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_keeps_k_worst(self):
        log = SlowQueryLog(capacity=3)
        for i, elapsed in enumerate([0.1, 0.5, 0.2, 0.9, 0.05, 0.3]):
            log.record(f"q{i}", elapsed)
        assert len(log) == 3
        assert log.total_recorded == 6
        assert [e.elapsed for e in log.entries()] == [0.9, 0.5, 0.3]
        assert [e.query for e in log.entries()] == ["q3", "q1", "q5"]

    def test_threshold_and_would_keep(self):
        log = SlowQueryLog(capacity=2)
        assert log.threshold == 0.0
        assert log.would_keep(0.0)
        log.record("a", 0.2)
        log.record("b", 0.4)
        assert log.threshold == 0.2
        assert log.would_keep(0.3)
        assert not log.would_keep(0.2)  # ties lose to the incumbent
        assert not log.record("c", 0.1)
        assert log.total_recorded == 3
        assert len(log) == 2

    def test_deterministic_tie_eviction(self):
        log = SlowQueryLog(capacity=1)
        log.record("first", 0.5)
        assert not log.record("second", 0.5)
        assert log.entries()[0].query == "first"

    def test_clear(self):
        log = SlowQueryLog(capacity=2)
        log.record("a", 1.0)
        log.clear()
        assert len(log) == 0 and log.total_recorded == 0


class TestRendering:
    def _log(self) -> SlowQueryLog:
        log = SlowQueryLog(capacity=2)
        log.record("(?x, p0+, ?y)", 0.75, n_results=12,
                   counters={"storage_ops": 100},
                   phase_seconds={"total": 0.75},
                   span_tree=[{"name": "query", "children": []}],
                   engine="ring")
        log.record("(?x, p1, ?y)", 0.25, timed_out=True)
        return log

    def test_to_dict_and_json(self):
        dump = json.loads(self._log().to_json())
        assert dump["capacity"] == 2
        assert dump["total_recorded"] == 2
        first, second = dump["entries"]
        assert first["elapsed"] == 0.75
        assert first["counters"] == {"storage_ops": 100}
        assert first["span_tree"][0]["name"] == "query"
        assert first["engine"] == "ring"
        assert second["timed_out"] is True
        assert "span_tree" not in second

    def test_format_table(self):
        text = self._log().format_table()
        lines = text.splitlines()
        assert "2/2 retained of 2 recorded" in lines[0]
        assert "(?x, p0+, ?y)" in lines[1]  # slowest first
        assert "TIMEOUT" in lines[2]


class TestEngineIntegration:
    def test_engine_feeds_slow_log(self, kg_index):
        log = SlowQueryLog(capacity=2)
        engine = RingRPQEngine(kg_index, slow_log=log)
        queries = ["(?x, p0, ?y)", "(?x, (p0|p1)+, ?y)", "(?x, p2, ?y)"]
        for query in queries:
            engine.evaluate(query)
        assert log.total_recorded == len(queries)
        assert len(log) == 2
        retained = log.entries()
        assert all(e.engine == engine.name for e in retained)
        assert all(e.counters.get("storage_ops", 0) > 0
                   for e in retained)
        assert retained[0].elapsed >= retained[1].elapsed

    def test_span_tree_captured_per_query(self, kg_index):
        """With spans on, each retained entry carries only its own
        query's subtree — not the whole session's span forest."""
        log = SlowQueryLog(capacity=1)
        engine = RingRPQEngine(kg_index, slow_log=log)
        metrics = Metrics(span_capacity=10_000)
        engine.evaluate("(?x, p0+, ?y)", metrics=metrics)
        engine.evaluate("(?x, p1+, ?y)", metrics=metrics)
        (entry,) = log.entries()
        assert entry.span_tree is not None
        assert len(entry.span_tree) == 1
        assert entry.span_tree[0]["name"] == "query"

    def test_without_metrics_no_span_tree(self, kg_index):
        log = SlowQueryLog(capacity=1)
        engine = RingRPQEngine(kg_index, slow_log=log)
        engine.evaluate("(?x, p0, ?y)")
        (entry,) = log.entries()
        assert entry.span_tree is None
        assert entry.phase_seconds == {}


class TestBenchIntegration:
    def test_run_benchmark_records_slowest(self, kg_index):
        from repro.bench.runner import run_benchmark
        from repro.core.query import RPQ

        log = SlowQueryLog(capacity=2)
        queries = [RPQ.parse("(?x, p0, ?y)"), RPQ.parse("(?x, p0+, ?y)")]
        run_benchmark({"ring": kg_index.engine}, queries,
                      timeout=10.0, slow_log=log)
        assert log.total_recorded == len(queries)
        assert len(log) == 2
        assert all(e.engine == "ring" for e in log.entries())
