"""Unit tests for the Ring-RPQ engine (shapes, flags, budgets)."""

from __future__ import annotations

import pytest

from repro.core.engine import RingRPQEngine
from repro.core.planner import choose_anchor_side
from repro.automata.glushkov import build_glushkov
from repro.automata.parser import parse_regex
from repro.graph.generators import chain_graph, cycle_graph
from repro.graph.model import Graph
from repro.ring.builder import RingIndex


@pytest.fixture(scope="module")
def chain_index():
    return RingIndex.from_graph(chain_graph(6))


@pytest.fixture(scope="module")
def cycle_index():
    return RingIndex.from_graph(cycle_graph(4))


class TestShapes:
    def test_variable_to_constant(self, chain_index):
        result = chain_index.evaluate("(?x, next+, n3)")
        assert result.pairs == {(f"n{i}", "n3") for i in range(3)}

    def test_constant_to_variable(self, chain_index):
        result = chain_index.evaluate("(n2, next+, ?y)")
        assert result.pairs == {("n2", f"n{i}") for i in range(3, 7)}

    def test_boolean_true_false(self, chain_index):
        assert chain_index.evaluate("(n0, next+, n6)")
        assert not chain_index.evaluate("(n6, next+, n0)")

    def test_boolean_inverse(self, chain_index):
        assert chain_index.evaluate("(n6, ^next+, n0)")

    def test_var_var(self, chain_index):
        result = chain_index.evaluate("(?x, next/next, ?y)")
        assert result.pairs == {(f"n{i}", f"n{i + 2}") for i in range(5)}

    def test_star_includes_zero_length(self, chain_index):
        result = chain_index.evaluate("(n1, next*, ?y)")
        assert ("n1", "n1") in result.pairs
        assert ("n1", "n6") in result.pairs

    def test_star_var_var_diagonal(self, chain_index):
        result = chain_index.evaluate("(?x, next*, ?y)")
        for i in range(7):
            assert (f"n{i}", f"n{i}") in result.pairs

    def test_nullable_boolean_same_node(self, chain_index):
        assert chain_index.evaluate("(n2, next*, n2)")
        assert not chain_index.evaluate("(n2, next+, n2)")

    def test_cycle_plus_self_pairs(self, cycle_index):
        result = cycle_index.evaluate("(?x, next+, ?y)")
        # every node reaches every node (including itself) on a cycle
        nodes = {f"n{i}" for i in range(4)}
        assert result.pairs == {(a, b) for a in nodes for b in nodes}

    def test_unknown_constants_empty(self, chain_index):
        assert not chain_index.evaluate("(ghost, next, ?y)")
        assert not chain_index.evaluate("(?x, next, ghost)")
        assert not chain_index.evaluate("(ghost, next, ghost)")

    def test_unknown_predicate_empty(self, chain_index):
        assert not chain_index.evaluate("(?x, nope, ?y)")
        # ... but a nullable expression over it still yields (v, v)
        result = chain_index.evaluate("(n0, nope*, ?y)")
        assert result.pairs == {("n0", "n0")}


class TestBudgets:
    def test_limit_truncates(self, chain_index):
        result = chain_index.evaluate("(?x, next*, ?y)", limit=3)
        assert len(result) == 3
        assert result.stats.truncated

    def test_limit_on_anchored(self, chain_index):
        result = chain_index.evaluate("(?x, next*, n6)", limit=2)
        assert len(result) <= 2
        assert result.stats.truncated

    def test_zero_timeout(self, chain_index):
        # An expired budget must return gracefully with the flag set.
        result = chain_index.evaluate("(?x, next*, ?y)", timeout=0.0)
        assert result.stats.timed_out or len(result) > 0

    def test_stats_populated(self, chain_index):
        result = chain_index.evaluate("(?x, next+, n5)")
        stats = result.stats
        assert stats.nfa_states >= 2
        assert stats.product_nodes > 0
        assert stats.product_edges > 0
        assert stats.wavelet_nodes > 0
        assert stats.storage_ops > 0
        assert stats.elapsed >= 0


class TestFlags:
    @pytest.fixture(scope="class")
    def graph(self):
        return Graph([
            ("a", "p", "b"), ("b", "p", "c"), ("b", "q", "d"),
            ("d", "p", "a"), ("c", "q", "a"), ("a", "q", "d"),
        ])

    @pytest.fixture(scope="class")
    def idx(self, graph):
        return RingIndex.from_graph(graph)

    QUERIES = [
        "(?x, p, ?y)",
        "(?x, ^q, ?y)",
        "(?x, p|q, ?y)",
        "(?x, p/q, ?y)",
        "(?x, p/^q, ?y)",
        "(?x, p+, ?y)",
        "(?x, (p|q)*, b)",
        "(a, p*/q, ?y)",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_fast_paths_match_generic(self, idx, query):
        fast = RingRPQEngine(idx, fast_paths=True)
        slow = RingRPQEngine(idx, fast_paths=False)
        assert fast.evaluate(query).pairs == slow.evaluate(query).pairs

    @pytest.mark.parametrize("query", QUERIES)
    def test_prune_off_matches(self, idx, query):
        pruned = RingRPQEngine(idx, prune=True)
        unpruned = RingRPQEngine(idx, prune=False)
        assert pruned.evaluate(query).pairs == unpruned.evaluate(query).pairs

    @pytest.mark.parametrize("query", QUERIES)
    def test_planner_off_matches(self, idx, query):
        planned = RingRPQEngine(idx, use_planner=True)
        unplanned = RingRPQEngine(idx, use_planner=False)
        assert planned.evaluate(query).pairs == \
            unplanned.evaluate(query).pairs

    @pytest.mark.parametrize("query", QUERIES + ["(a, p+, c)",
                                                 "(a, p*/q, d)"])
    def test_dfs_matches_bfs(self, idx, query):
        bfs = RingRPQEngine(idx, traversal="bfs")
        dfs = RingRPQEngine(idx, traversal="dfs")
        assert bfs.evaluate(query).pairs == dfs.evaluate(query).pairs

    def test_bad_traversal_rejected(self, idx):
        with pytest.raises(ValueError):
            RingRPQEngine(idx, traversal="zigzag")

    def test_boolean_planner_side_choice(self, idx):
        # fixed-fixed queries must agree regardless of anchor side
        for query in ["(a, p+, c)", "(a, q/p, c)", "(d, p*, b)"]:
            planned = RingRPQEngine(idx, use_planner=True)
            unplanned = RingRPQEngine(idx, use_planner=False)
            assert planned.evaluate(query).pairs == \
                unplanned.evaluate(query).pairs, query

    def test_prune_visits_fewer_wavelet_nodes(self, idx):
        pruned = RingRPQEngine(idx, prune=True, fast_paths=False)
        unpruned = RingRPQEngine(idx, prune=False, fast_paths=False)
        query = "(?x, p+, b)"
        assert (
            pruned.evaluate(query).stats.wavelet_nodes
            <= unpruned.evaluate(query).stats.wavelet_nodes
        )


class TestExplain:
    def test_shapes(self, chain_index):
        engine = chain_index.engine
        assert engine.explain("(?x, next+, n3)")["strategy"].startswith(
            "backward run of E"
        )
        assert engine.explain("(n0, next+, ?y)")["strategy"].startswith(
            "backward run of ^E"
        )
        assert "early exit" in engine.explain("(n0, next+, n3)")["strategy"]

    def test_fast_path_detection(self, chain_index):
        engine = chain_index.engine
        assert "single-predicate" in \
            engine.explain("(?x, next, ?y)")["strategy"]
        assert "range intersection" in \
            engine.explain("(?x, next/next, ?y)")["strategy"]

    def test_vv_anchor_side(self, chain_index):
        plan = chain_index.engine.explain("(?x, next+, ?y)")
        assert plan["anchor_side"] in ("subject", "object")
        assert plan["nfa_states"] == 2
        assert plan["b_predicates"] == ["next"]
        assert not plan["nullable"]


class TestPlanner:
    def test_prefers_rare_first_predicate(self):
        # p1 has 1 edge, p2 has many: (?x, p1/p2*, ?y) should anchor the
        # subject side (start from p1), as §5 prescribes.
        triples = [("s", "p1", "m")] + [
            (f"m{i}", "p2", f"m{i + 1}") for i in range(10)
        ]
        index = RingIndex.from_graph(Graph(triples))
        automaton = build_glushkov(parse_regex("p1/p2*"))
        side = choose_anchor_side(
            automaton, index.dictionary, index.ring
        )
        assert side == "subject"

    def test_prefers_rare_last_predicate(self):
        triples = [("m", "p1", "s")] + [
            (f"m{i}", "p2", f"m{i + 1}") for i in range(10)
        ]
        index = RingIndex.from_graph(Graph(triples))
        automaton = build_glushkov(parse_regex("p2*/p1"))
        side = choose_anchor_side(
            automaton, index.dictionary, index.ring
        )
        assert side == "object"
