"""Property-based differential testing of the ring engine.

Hypothesis generates the graph *and* the expression; the property is
exact answer-set equality with the brute-force product-graph oracle.
This complements `test_differential.py` (seeded random fuzz) with
shrinkable counterexamples.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.model import Graph
from repro.ring.builder import RingIndex
from repro.testing import brute_force_rpq

NODES = [f"n{i}" for i in range(8)]
PREDICATES = ["p", "q"]


@st.composite
def graphs(draw):
    n_edges = draw(st.integers(min_value=1, max_value=18))
    triples = set()
    for _ in range(n_edges):
        s = draw(st.sampled_from(NODES))
        p = draw(st.sampled_from(PREDICATES))
        o = draw(st.sampled_from(NODES))
        triples.add((s, p, o))
    return Graph(triples)


@st.composite
def expressions(draw, depth=0):
    if depth >= 2:
        choice = "atom"
    else:
        choice = draw(st.sampled_from(
            ["atom", "atom", "concat", "union", "star", "plus", "opt",
             "inverse"]
        ))
    if choice == "atom":
        return draw(st.sampled_from(PREDICATES))
    if choice == "inverse":
        return "^" + draw(st.sampled_from(PREDICATES))
    if choice == "concat":
        return (draw(expressions(depth + 1)) + "/"
                + draw(expressions(depth + 1)))
    if choice == "union":
        return ("(" + draw(expressions(depth + 1)) + "|"
                + draw(expressions(depth + 1)) + ")")
    if choice == "star":
        return "(" + draw(expressions(depth + 1)) + ")*"
    if choice == "plus":
        return "(" + draw(expressions(depth + 1)) + ")+"
    return "(" + draw(expressions(depth + 1)) + ")?"


@settings(max_examples=40, deadline=None)
@given(graph=graphs(), expr=expressions(),
       shape=st.sampled_from(["vv", "vc", "cv", "cc"]),
       s_pick=st.integers(0, 7), o_pick=st.integers(0, 7))
def test_engine_matches_oracle(graph, expr, shape, s_pick, o_pick):
    index = RingIndex.from_graph(graph)
    subject = "?x" if shape[0] == "v" else NODES[s_pick]
    obj = "?y" if shape[1] == "v" else NODES[o_pick]
    query = f"({subject}, {expr}, {obj})"
    expected = brute_force_rpq(graph, query)
    got = index.evaluate(query, timeout=60).pairs
    assert got == expected, query


@settings(max_examples=25, deadline=None)
@given(graph=graphs(), expr=expressions())
def test_vv_subject_object_duality(graph, expr):
    """(?x, E, ?y) must equal the swapped result of (?y, ^E, ?x)."""
    index = RingIndex.from_graph(graph)
    forward = index.evaluate(f"(?x, {expr}, ?y)", timeout=60).pairs
    from repro.automata.parser import parse_regex

    reversed_expr = str(parse_regex(expr).reverse())
    backward = index.evaluate(f"(?x, {reversed_expr}, ?y)",
                              timeout=60).pairs
    assert forward == {(o, s) for s, o in backward}


@settings(max_examples=25, deadline=None)
@given(graph=graphs(), expr=expressions())
def test_anchored_consistent_with_vv(graph, expr):
    """Anchoring must select exactly the matching rows of the v-v set."""
    index = RingIndex.from_graph(graph)
    full = index.evaluate(f"(?x, {expr}, ?y)", timeout=60).pairs
    nodes = graph.nodes
    anchor = nodes[len(nodes) // 2]
    as_object = index.evaluate(f"(?x, {expr}, {anchor})", timeout=60).pairs
    assert as_object == {(s, o) for s, o in full if o == anchor}
    as_subject = index.evaluate(f"({anchor}, {expr}, ?y)",
                                timeout=60).pairs
    assert as_subject == {(s, o) for s, o in full if s == anchor}
