"""The space-audit plane: bit-level memory accounting for every tier.

The contracts under test, in acceptance-criterion order:

* a :class:`SpaceNode` tree telescopes *exactly* — every branch total
  equals the sum of its children, enforced at construction;
* the ring audit's total equals the sum of its per-column nodes and
  agrees with the snapshot segment's byte size within 5% (the attached,
  view-backed form; the remainder is 64-byte alignment padding);
* ``prometheus_text`` round-trips labelled ``space.bytes`` gauges,
  escaping included;
* ``/metrics`` and ``/debug/space`` serve the same numbers live;
* the serving tier's cache bytes and the registry-driven gauge zeroing
  on ``close()`` behave.
"""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.core.result import QueryResult, QueryStats
from repro.errors import InvariantViolation
from repro.graph.generators import chain_graph, wikidata_like
from repro.graph.io import save_graph
from repro.obs import Metrics, TelemetryServer, prometheus_text
from repro.obs.export import label_key, unescape_label
from repro.obs.space import (
    SPACE_GAUGE_FAMILY,
    SpaceNode,
    audit_index,
    audit_manifest,
    audit_metrics,
    audit_service,
    deep_getsizeof,
    publish_space_gauges,
)
from repro.ring.builder import RingIndex
from repro.ring.snapshot import (
    SharedIndexHandle,
    _write_payload,
    attach_index,
    snapshot_index,
)
from repro.serve import QueryService
from repro.serve.cache import ResultCache
from repro.serve.service import _LOAD_GAUGE_PREFIXES
from repro.succinct.bitvector import BitVector


@pytest.fixture(scope="module")
def mid_index():
    """Big enough that snapshot alignment padding is a small fraction."""
    graph = wikidata_like(
        n_nodes=800, n_edges=4_000, n_predicates=12, seed=3
    )
    return RingIndex.from_graph(graph)


# ----------------------------------------------------------------------
# SpaceNode core
# ----------------------------------------------------------------------


class TestSpaceNode:
    def test_leaf_requires_bytes(self):
        with pytest.raises(InvariantViolation, match="explicit byte count"):
            SpaceNode("leaf")

    def test_branch_sums_children(self):
        node = SpaceNode("parent", children=[
            SpaceNode("a", 10), SpaceNode("b", 32),
        ])
        assert node.nbytes == 42

    def test_explicit_total_must_match_children(self):
        with pytest.raises(InvariantViolation, match="!= sum of children"):
            SpaceNode("parent", nbytes=41, children=[
                SpaceNode("a", 10), SpaceNode("b", 32),
            ])
        # Agreement is fine.
        node = SpaceNode("parent", nbytes=42, children=[
            SpaceNode("a", 10), SpaceNode("b", 32),
        ])
        assert node.nbytes == 42

    def test_negative_size_rejected(self):
        with pytest.raises(InvariantViolation, match="negative"):
            SpaceNode("leaf", -1)

    def test_check_catches_mutation(self):
        node = SpaceNode("parent", children=[SpaceNode("a", 10)])
        node.check()
        node.children[0].nbytes = 11
        with pytest.raises(InvariantViolation):
            node.check()

    def test_find_and_iter_nodes(self):
        tree = SpaceNode("root", children=[
            SpaceNode("left", children=[SpaceNode("deep", 4)]),
            SpaceNode("right", 8),
        ])
        paths = [path for path, _ in tree.iter_nodes()]
        assert paths == ["root", "root.left", "root.left.deep", "root.right"]
        assert tree.find("root.left.deep").nbytes == 4
        assert tree.find("root") is tree
        assert tree.find("root.missing") is None
        assert tree.find("other") is None

    def test_to_dict_shares_and_bits(self):
        tree = SpaceNode("root", children=[
            SpaceNode("a", 30), SpaceNode("b", 10),
        ])
        d = tree.to_dict(n_triples=40)
        assert d["bytes"] == 40
        assert d["bits_per_triple"] == pytest.approx(8.0)
        shares = {c["name"]: c["share_of_parent"] for c in d["children"]}
        assert shares == {"a": pytest.approx(0.75), "b": pytest.approx(0.25)}

    def test_format_tree_lists_components(self):
        tree = SpaceNode("root", children=[SpaceNode("child", 1024)])
        text = tree.format_tree(n_triples=256)
        assert "component" in text and "bits/triple" in text
        assert "child" in text and "1,024" in text


class TestDeepGetsizeof:
    def test_counts_owned_array_payload(self):
        arr = np.zeros(10_000, dtype=np.int64)
        assert deep_getsizeof(arr) >= arr.nbytes

    def test_view_payload_not_double_counted(self):
        arr = np.zeros(10_000, dtype=np.int64)
        view = arr[:-1]
        assert deep_getsizeof(view) < arr.nbytes

    def test_shared_object_counted_once(self):
        blob = "x" * 4096
        assert deep_getsizeof([blob, blob]) < 2 * deep_getsizeof(blob)

    def test_nested_containers(self):
        flat = {"k": 1}
        nested = {"k": {"deep": ["strings", "inside"]}}
        assert deep_getsizeof(nested) > deep_getsizeof(flat)


# ----------------------------------------------------------------------
# Succinct-structure hooks
# ----------------------------------------------------------------------


class TestBitVectorMeasure:
    def test_built_form_exact_sum(self):
        bv = BitVector([1, 0, 1, 1] * 500)
        node = bv.measure()
        node.check()
        names = {c.name for c in node.children}
        assert {"words", "rank_directory"} <= names
        assert node.nbytes == sum(c.nbytes for c in node.children)

    def test_view_form_counts_shared_buffers_once(self):
        bv = BitVector([1, 0, 1, 1] * 500)
        words_ext, cum64, n = bv.batch_data()
        view = BitVector.from_packed(words_ext, cum64, n)
        node = view.measure()
        node.check()
        assert node.nbytes == words_ext.nbytes + cum64.nbytes


class TestWaveletMatrixMeasure:
    def test_accounts_every_level_plus_tables(self, kg_graph):
        # A fresh index: the session-scoped fixtures may have lazily
        # materialised batch buffers, which measure() rightly counts
        # but which size_in_bits() never includes.
        wm = RingIndex.from_graph(kg_graph).ring.L_p
        node = wm.measure("L_p")
        node.check()
        level_names = {c.name for c in node.children}
        assert "tables" in level_names
        assert any(name.startswith("level") for name in level_names)
        # measure() counts every allocated buffer; size_in_bits() pins
        # Table 2 and omits the class-occurrence tables.  The delta is
        # exactly those tables.
        class_cum = node.find("L_p.tables.class_cum")
        assert class_cum is not None
        assert node.nbytes * 8 == wm.size_in_bits() + class_cum.nbytes * 8


class TestRingMeasure:
    def test_ring_total_is_exact_sum_of_children(self, kg_index):
        node = kg_index.ring.measure("ring")
        node.check()
        assert node.nbytes == sum(c.nbytes for c in node.children)
        names = {c.name for c in node.children}
        assert {"L_p", "L_s", "C_o", "C_p"} <= names

    def test_compressed_boundaries_show_elias_fano(self, kg_graph):
        index = RingIndex.from_graph(kg_graph, compressed_boundaries=True)
        node = index.ring.measure("ring")
        node.check()
        ef = node.find("ring.C_o.elias_fano")
        assert ef is not None
        assert node.find("ring.C_o").detail.get("form") == "elias-fano"

    def test_audit_index_covers_dictionary(self, kg_index):
        root = audit_index(kg_index)
        root.check()
        dictionary = root.find("index.dictionary")
        assert dictionary is not None
        assert dictionary.nbytes == kg_index.dictionary.size_in_bits() // 8

    def test_audit_index_includes_compiled_matrices(self, kg_index):
        pytest.importorskip("scipy")
        from repro.matrix.matrices import PredicateMatrices

        store = PredicateMatrices.from_index(kg_index)
        root = audit_index(kg_index)
        matrix = root.find("index.matrix")
        assert matrix is not None
        assert matrix.nbytes == store.measure("matrix").nbytes
        assert matrix.children, "expected per-predicate CSR branches"


# ----------------------------------------------------------------------
# Snapshot segments
# ----------------------------------------------------------------------


class TestSnapshotAudit:
    def test_manifest_audit_equals_total_bytes_exactly(self, mid_index):
        manifest, _ = snapshot_index(mid_index, include_matrices=False)
        snap = audit_manifest(manifest)
        snap.check()
        assert snap.nbytes == manifest["total_bytes"]
        padding = snap.find("snapshot.padding")
        assert padding is not None and padding.nbytes >= 0

    def test_attached_ring_within_5pct_of_segment(self, mid_index):
        """The acceptance criterion: the served (view-backed) ring's
        audit agrees with the segment byte size within 5%; the gap is
        only the 64-byte alignment padding."""
        manifest, buffers = snapshot_index(mid_index, include_matrices=False)
        payload = bytearray(manifest["total_bytes"])
        _write_payload(manifest, buffers, payload)
        attached = attach_index(manifest, payload)
        node = attached.ring.measure("ring")
        node.check()
        segment = manifest["total_bytes"]
        assert 0.95 * segment <= node.nbytes <= segment
        padding = audit_manifest(manifest).find("snapshot.padding").nbytes
        assert node.nbytes + padding == segment

    def test_shared_handle_measure_matches_segment(self, kg_index):
        with SharedIndexHandle.create(kg_index) as handle:
            node = handle.measure()
            node.check()
            assert node.nbytes == handle.nbytes
            assert node.detail.get("segment") == handle.name


# ----------------------------------------------------------------------
# Labelled gauges and the Prometheus exporter
# ----------------------------------------------------------------------


class TestLabelledGauges:
    def test_label_key_escapes_and_unescapes(self):
        raw = 'we"ird\\component'
        key = label_key("space.bytes", component=raw)
        assert key == 'space.bytes{component="we\\"ird\\\\component"}'
        inner = key.split('"', 1)[1].rsplit('"', 1)[0]
        assert unescape_label(inner) == raw

    def test_prometheus_round_trip_with_components(self):
        metrics = Metrics()
        components = {"index.ring": 48_896.0, 'odd"path\\x': 64.0}
        for component, value in components.items():
            metrics.set_gauge(
                label_key(SPACE_GAUGE_FAMILY, component=component), value
            )
        text = prometheus_text(metrics)
        # One TYPE line for the family, one sample per component.
        assert text.count("# TYPE repro_space_bytes gauge") == 1
        recovered = {}
        for line in text.splitlines():
            if line.startswith("repro_space_bytes{component="):
                label_part = line.split('component="', 1)[1]
                escaped, value = label_part.rsplit('"}', 1)
                recovered[unescape_label(escaped)] = float(value)
        assert recovered == components

    def test_publish_space_gauges_respects_depth(self):
        metrics = Metrics()
        tree = SpaceNode("index", children=[
            SpaceNode("ring", children=[SpaceNode("L_p", 7)]),
        ])
        published = publish_space_gauges(metrics, tree, max_depth=1)
        assert published == {"index": 7, "index.ring": 7}
        key = label_key(SPACE_GAUGE_FAMILY, component="index.ring")
        assert metrics.gauge(key) == 7.0


# ----------------------------------------------------------------------
# Serving tier: cache bytes, registry-driven zeroing
# ----------------------------------------------------------------------


def _result(n_pairs: int) -> QueryResult:
    pairs = {(f"s{i}", f"o{i}") for i in range(n_pairs)}
    return QueryResult(pairs=pairs, stats=QueryStats())


class TestCacheBytes:
    def test_store_evict_invalidate_track_bytes(self):
        cache = ResultCache(capacity=2)
        cache.store(("q1",), None, _result(50))
        first = cache.nbytes
        assert first > 0
        cache.store(("q2",), None, _result(50))
        assert cache.nbytes > first
        cache.store(("q3",), None, _result(50))  # evicts q1
        assert len(cache) == 2
        entries_sum = sum(
            e.nbytes for e in cache._entries.values()
        )
        assert cache.nbytes == entries_sum
        assert cache.invalidate() == 2
        assert cache.nbytes == 0

    def test_measure_and_snapshot_expose_bytes(self):
        cache = ResultCache(capacity=4)
        cache.store(("q",), None, _result(10))
        node = cache.measure()
        node.check()
        assert node.nbytes == cache.nbytes
        assert cache.snapshot()["bytes"] == cache.nbytes


@pytest.mark.concurrency
class TestServiceSpaceGauges:
    def test_cache_bytes_gauge_follows_cache(self, kg_index):
        metrics = Metrics()
        service = QueryService(
            kg_index, workers=1, cache_size=8, metrics=metrics
        )
        try:
            service.evaluate("(?x, p0/p1, ?y)")
            assert metrics.gauge("serve.cache.bytes") == service.cache.nbytes
            assert metrics.gauge("serve.cache.bytes") > 0
            service.invalidate_cache()
            assert metrics.gauge("serve.cache.bytes") == 0
        finally:
            service.close()

    def test_close_sweeps_every_load_gauge(self, kg_index):
        metrics = Metrics()
        service = QueryService(
            kg_index, workers=1, cache_size=8, metrics=metrics
        )
        service.evaluate("(?x, p0, ?y)")
        # Gauges the sweep has never been told about by name, plus one
        # outside the load prefixes and a space gauge: the sweep is
        # registry-driven, not an enumerated list.
        metrics.set_gauge("serve.some.novel_gauge", 5.0)
        metrics.set_gauge("router.some.decision", 2.0)
        metrics.set_gauge("process.rss_bytes", 123.0)
        space_key = label_key(SPACE_GAUGE_FAMILY, component="index.ring")
        metrics.set_gauge(space_key, 48_896.0)
        service.close()
        for name in metrics.gauges:
            if name.startswith(_LOAD_GAUGE_PREFIXES):
                assert metrics.gauge(name) == 0.0, name
        assert metrics.gauge("process.rss_bytes") == 123.0
        assert metrics.gauge(space_key) == 48_896.0

    def test_audit_service_covers_mutable_state(self, kg_index):
        from repro.obs.flight import FlightRecorder

        metrics = Metrics()
        service = QueryService(
            kg_index, workers=1, cache_size=8, metrics=metrics,
            flight=FlightRecorder(capacity=16),
        )
        try:
            service.evaluate("(?x, p0/p1, ?y)")
            tree = audit_service(service)
            tree.check()
            names = {c.name for c in tree.children}
            assert {"index", "cache", "flight", "metrics"} <= names
            assert tree.find("service.cache").nbytes == service.cache.nbytes
        finally:
            service.close()


# ----------------------------------------------------------------------
# Live endpoints: /metrics and /debug/space serve the same numbers
# ----------------------------------------------------------------------


def _get(url: str, timeout: float = 10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode("utf-8")


@pytest.mark.concurrency
class TestLiveSpaceEndpoints:
    @pytest.fixture()
    def plane(self, kg_index):
        metrics = Metrics()
        service = QueryService(
            kg_index, workers=1, cache_size=8, metrics=metrics
        )
        httpd = TelemetryServer(
            metrics, lock=service.obs_lock, service=service
        ).start()
        try:
            yield {"service": service, "metrics": metrics, "httpd": httpd}
        finally:
            httpd.stop()
            service.close()

    def test_debug_space_and_metrics_agree(self, plane):
        plane["service"].evaluate("(?x, p0/p1, ?y)")
        status, body = _get(plane["httpd"].url + "/debug/space")
        assert status == 200
        report = json.loads(body)
        tree = report["tree"]
        assert tree["name"] == "service"
        assert report["n_triples"] == len(plane["service"].index.ring)
        by_name = {c["name"]: c["bytes"] for c in tree["children"]}

        status, text = _get(plane["httpd"].url + "/metrics")
        assert status == 200
        scraped = {}
        for line in text.splitlines():
            if line.startswith("repro_space_bytes{component="):
                label_part = line.split('component="', 1)[1]
                component, value = label_part.rsplit('"}', 1)
                scraped[unescape_label(component)] = float(value)
        assert scraped["service"] == tree["bytes"]
        assert scraped["service.index"] == by_name["index"]
        assert scraped["service.index.ring"] == plane[
            "service"
        ].index.ring.measure("ring").nbytes

    def test_index_page_advertises_debug_space(self, plane):
        status, body = _get(plane["httpd"].url + "/")
        assert status == 200
        assert "/debug/space" in body


# ----------------------------------------------------------------------
# EXPLAIN working set, trajectory history, metrics audit
# ----------------------------------------------------------------------


class TestExplainWorkingSet:
    def test_plan_carries_working_set_bytes(self, kg_index):
        from repro.bench.space import query_working_set_bytes
        from repro.obs.explain import format_plan, plan_dict

        plan = plan_dict(kg_index, "(?x, p0/p1, ?y)")
        wsb = plan["estimate"]["working_set_bytes"]
        assert wsb == int(query_working_set_bytes(kg_index, nfa_bits=16))
        assert wsb > 0
        text = format_plan(kg_index, "(?x, p0/p1, ?y)")
        assert "working set" in text
        assert "D visited array" in text


class TestTrajectoryHistory:
    def test_missing_or_alien_report_yields_empty(self):
        from repro.bench.trajectory import _carry_history

        assert _carry_history(None) == []
        assert _carry_history({"unrelated": 1}) == []

    def test_headline_appended_and_capped(self):
        from repro.bench.trajectory import HISTORY_LIMIT, _carry_history

        old = {
            "meta": {"label": "run-7"},
            "overall": {
                "count": 10, "mean_seconds": 0.5, "timeouts": 1,
                "percentiles": {"p50": 0.1, "p99": 0.9},
            },
            "space": {"ring": {"bits_per_triple": 88.5}},
            "history": [
                {"label": f"run-{i}"} for i in range(HISTORY_LIMIT)
            ],
        }
        history = _carry_history(old)
        assert len(history) == HISTORY_LIMIT
        head = history[-1]
        assert head["label"] == "run-7"
        assert head["ring_bits_per_triple"] == 88.5
        assert head["p99_seconds"] == 0.9
        # Oldest entry fell off.
        assert history[0]["label"] == "run-1"


class TestMetricsAudit:
    def test_histograms_counters_gauges_accounted(self):
        metrics = Metrics()
        metrics.inc("some.counter")
        metrics.set_gauge("some.gauge", 2.0)
        metrics.observe("serve.latency", 0.25)
        node = audit_metrics(metrics)
        node.check()
        names = {c.name for c in node.children}
        assert {"histograms", "counters", "gauges"} <= names
        assert node.nbytes > 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestSpaceCLI:
    @pytest.fixture()
    def graph_file(self, tmp_path):
        graph = wikidata_like(
            n_nodes=120, n_edges=600, n_predicates=8, seed=3
        )
        path = tmp_path / "space.nt"
        save_graph(graph, path)
        return str(path)

    def test_text_report(self, graph_file, capsys):
        from repro.cli import main

        rc = main(["space", graph_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ring (built)" in out
        assert "snapshot segment" in out
        assert "bits/triple" in out

    def test_json_report_totals(self, graph_file, capsys):
        from repro.cli import main

        rc = main(["space", graph_file, "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        totals = report["totals"]
        assert totals["ring_bytes"] > 0
        assert totals["ring_bits_per_triple"] > 0
        assert totals["snapshot_bytes"] >= totals["attached_ring_bytes"]
        assert 0 < totals["attached_ring_segment_agreement"] <= 1.0
        assert report["index"]["name"] == "index"
        assert report["snapshot"]["name"] == "snapshot"
        ring = next(
            c for c in report["index"]["children"] if c["name"] == "ring"
        )
        assert ring["bytes"] == totals["ring_bytes"]

    def test_tiny_chain_graph_still_audits(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "chain.nt"
        save_graph(chain_graph(4), path)
        rc = main(["space", str(path), "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["totals"]["n_triples"] > 0
