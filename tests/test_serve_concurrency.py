"""Concurrency properties of the serving layer.

The load-bearing claim of PR 4 is that one immutable ring + one
re-entrant engine can serve a thread pool with *bit-identical* results
— same pair sets, same operation counters — as a sequential run.
These tests check that claim directly (fixed workloads) and
property-based (hypothesis generates graph + workload), including the
capped variants where a wrong shared-state interleaving would show up
as a different truncation prefix.

Counter comparisons pin the prepare-LRU out of the picture
(``prepare_cache_size=0``): with the cross-query cache on, the
`prepare_cache_hits` counter depends on which query warmed the cache
first, which is scheduling — not correctness.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import RingRPQEngine
from repro.graph.model import Graph
from repro.obs.metrics import Metrics
from repro.ring.builder import RingIndex
from repro.serve import QueryService

pytestmark = pytest.mark.concurrency

WORKLOAD = [
    "(?x, p0, ?y)",
    "(?x, p0/p1, ?y)",
    "(?x, (p0|p1)*, ?y)",
    "(?x, p2+, ?y)",
    "(?x, ^p0/p1, ?y)",
    "(?x, p3?/p4, ?y)",
    "(?x, (p0|p1|p2)*, ?y)",
    "(?x, p1*, ?y)",
]


def _sequential(index, queries, limit=None):
    engine = RingRPQEngine(index, prepare_cache_size=0)
    out = []
    for query in queries:
        result = engine.evaluate(query, timeout=60, limit=limit)
        out.append((result.pairs, result.stats.operation_counts(),
                    result.stats.truncated))
    return out


def _served(index, queries, workers, limit=None):
    service = QueryService(
        index, workers=workers, cache_size=0,
        max_pending=len(queries) + workers,
        engine=RingRPQEngine(index, prepare_cache_size=0),
    )
    with service:
        results = service.run(queries, timeout=60, limit=limit)
    return [(r.pairs, r.stats.operation_counts(), r.stats.truncated)
            for r in results]


class TestPoolMatchesSequential:
    def test_bit_identical_uncapped(self, kg_index):
        expected = _sequential(kg_index, WORKLOAD)
        got = _served(kg_index, WORKLOAD, workers=4)
        for query, want, have in zip(WORKLOAD, expected, got):
            assert have[0] == want[0], f"pairs differ: {query}"
            assert have[1] == want[1], f"counters differ: {query}"

    def test_bit_identical_limit_capped(self, kg_index):
        """Truncation prefixes are deterministic for a fixed engine
        configuration, so even capped queries must replay exactly."""
        expected = _sequential(kg_index, WORKLOAD, limit=7)
        got = _served(kg_index, WORKLOAD, workers=4, limit=7)
        for query, want, have in zip(WORKLOAD, expected, got):
            assert have == want, f"capped run differs: {query}"

    def test_many_rounds_interleaved(self, kg_index):
        """Replaying the workload concurrently many times over never
        drifts — a shared-state race would eventually show up."""
        queries = WORKLOAD * 4
        expected = _sequential(kg_index, queries)
        got = _served(kg_index, queries, workers=4)
        assert got == expected

    def test_timeout_capped_flags_contract(self, kg_index):
        """Timed-out partials are scheduling-dependent, so only the
        *contract* is asserted: tagged timed_out AND truncated (the
        degradation rule), pairs a subset of the full answer."""
        query = "(?x, (p0|p1|p2|p3)*, ?y)"
        full = RingRPQEngine(kg_index).evaluate(query, timeout=60).pairs
        with QueryService(kg_index, workers=4, cache_size=0) as service:
            results = service.run([query] * 8, timeout=1e-4)
        for result in results:
            if result.stats.timed_out:
                assert result.stats.truncated
                assert result.pairs <= full
            else:
                assert result.pairs == full


class TestCounterIsolation:
    def test_no_cross_pollution_between_concurrent_queries(self, kg_index):
        """Regression for the shared-mutable-state bug class: before
        the ``_EvalContext`` refactor, stats/obs/memo lived on the
        engine and concurrent evaluations bled counters into each
        other.  Each query's counters must equal its own sequential
        run, not a mixture."""
        light = "(?x, p5, ?y)"
        heavy = "(?x, (p0|p1)*, ?y)"
        engine = RingRPQEngine(kg_index, prepare_cache_size=0)
        want_light = engine.evaluate(light, timeout=60).stats
        want_heavy = engine.evaluate(heavy, timeout=60).stats
        assert (want_light.operation_counts()
                != want_heavy.operation_counts())

        queries = [light, heavy] * 6
        for (pairs, counters, _), query in zip(
            _served(kg_index, queries, workers=4), queries
        ):
            want = want_light if query is light else want_heavy
            assert counters == want.operation_counts(), query

    def test_per_call_metrics_registries_stay_private(self, kg_index):
        """Two threads evaluating on one engine with their *own*
        registries: each registry sees exactly its own query's work."""
        engine = RingRPQEngine(kg_index, prepare_cache_size=0)
        query = "(?x, p0/p1, ?y)"
        solo = Metrics()
        engine.evaluate(query, timeout=60, metrics=solo)
        want = dict(solo.counters)

        registries = [Metrics() for _ in range(4)]
        errors = []

        def run(obs):
            try:
                engine.evaluate(query, timeout=60, metrics=obs)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(obs,))
                   for obs in registries]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for obs in registries:
            assert obs.counters == want


NODES = [f"n{i}" for i in range(6)]
PREDICATES = ["p", "q"]


@st.composite
def graphs(draw):
    n_edges = draw(st.integers(min_value=2, max_value=14))
    triples = set()
    for _ in range(n_edges):
        s = draw(st.sampled_from(NODES))
        p = draw(st.sampled_from(PREDICATES))
        o = draw(st.sampled_from(NODES))
        triples.add((s, p, o))
    return Graph(triples)


EXPRESSIONS = [
    "p", "q", "^p", "p/q", "p|q", "p*", "q+", "p?/q",
    "(p|q)*", "(p/q)|q", "^q/p*",
]


@pytest.mark.hypothesis
@settings(max_examples=15, deadline=None)
@given(graph=graphs(),
       picks=st.lists(st.integers(0, len(EXPRESSIONS) - 1),
                      min_size=4, max_size=10),
       limit=st.sampled_from([None, None, 3]))
def test_property_pool_equals_sequential(graph, picks, limit):
    """Hypothesis drives graph + workload; a 4-worker pool must be
    bit-identical (pairs, counters, truncation) to sequential."""
    index = RingIndex.from_graph(graph)
    queries = [f"(?x, {EXPRESSIONS[i]}, ?y)" for i in picks]
    assert (_served(index, queries, workers=4, limit=limit)
            == _sequential(index, queries, limit=limit))


def test_flight_ring_under_parallel_settlement(kg_index):
    """Many submitter threads settling concurrently: the flight ring
    records every settlement exactly once, every retained record's
    stage durations cover its end-to-end latency, and the exemplar ids
    in the stage histograms all resolve to real queries."""
    from repro.obs.flight import FlightRecorder

    n_threads, per_thread = 6, 8
    flight = FlightRecorder(capacity=16)
    obs = Metrics()
    service = QueryService(
        kg_index, workers=4, cache_size=0, metrics=obs, flight=flight,
        max_pending=n_threads * per_thread + 8,
        engine=RingRPQEngine(kg_index, prepare_cache_size=0),
    )
    errors: list[BaseException] = []

    def submitter(tid: int) -> None:
        try:
            for i in range(per_thread):
                query = WORKLOAD[(tid + i) % len(WORKLOAD)]
                service.evaluate(query, timeout=60)
        except BaseException as exc:  # noqa: BLE001 - surface in main
            errors.append(exc)

    threads = [
        threading.Thread(target=submitter, args=(tid,))
        for tid in range(n_threads)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        service.close()
    assert not errors
    total = n_threads * per_thread
    assert flight.total_recorded == total
    records = flight.records()
    assert len(records) == flight.capacity
    ids = [r["query_id"] for r in records]
    assert len(set(ids)) == len(ids), "duplicate settlements in ring"
    for record in records:
        stages = record["stages"]
        assert sum(stages.values()) == pytest.approx(
            record["total_seconds"], rel=0.05, abs=1e-6
        )
    # Aggregate invariants: one observation per settled query, and
    # every exemplar a real query id of this run.
    execute = obs.histogram("serve.stage.execute")
    assert execute is not None and execute.count == total
    all_ids = {f"q{i}" for i in range(1, total + 1)}
    for label, _ in execute.exemplars.values():
        assert label in all_ids
