"""Tests for triple-pattern access on the ring index."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.graph.generators import random_graph
from repro.ring.builder import RingIndex


@pytest.fixture(scope="module")
def setup():
    graph = random_graph(n_nodes=15, n_edges=60, n_predicates=3, seed=29)
    index = RingIndex.from_graph(graph)
    completed = sorted(graph.completion())
    return index, completed


def naive(completed, s=None, p=None, o=None):
    return sorted(
        t for t in completed
        if (s is None or t[0] == s)
        and (p is None or t[1] == p)
        and (o is None or t[2] == o)
    )


PATTERNS = [
    (None, None, None),
    ("n1", None, None),
    (None, "p0", None),
    (None, None, "n2"),
    ("n1", "p0", None),
    (None, "p0", "n2"),
    ("n1", None, "n2"),
    ("n1", "p0", "n2"),
    (None, "^p1", None),
    ("n3", "^p1", None),
]


@pytest.mark.parametrize("pattern", PATTERNS)
def test_matches_naive(setup, pattern):
    index, completed = setup
    s, p, o = pattern
    got = sorted(index.match_pattern(s, p, o))
    assert got == naive(completed, s, p, o), pattern


def test_unknown_components_empty(setup):
    index, _ = setup
    assert list(index.match_pattern("ghost", None, None)) == []
    assert list(index.match_pattern(None, "ghost", None)) == []
    assert list(index.match_pattern(None, None, "ghost")) == []


def test_multiplicity_is_one_per_triple(setup):
    index, completed = setup
    counts = Counter(index.match_pattern(None, None, None))
    assert all(v == 1 for v in counts.values())
    assert sum(counts.values()) == len(completed)


def test_santiago_symmetric(santiago_index):
    got = sorted(santiago_index.match_pattern(None, "l5", "Baq"))
    assert got == [("BA", "l5", "Baq")]
    got = sorted(santiago_index.match_pattern("Baq", "l5", None))
    assert got == [("Baq", "l5", "BA")]
    # fixed subject via inverse of an asymmetric predicate
    got = sorted(santiago_index.match_pattern("SA", "bus", None))
    assert got == [("SA", "bus", "UCh")]
