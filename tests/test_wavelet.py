"""Tests for the wavelet matrix and the pointer wavelet tree.

Both structures expose the same operations, so most tests are run
against both via the ``structure`` fixture; the matrix is additionally
differential-tested against the tree under hypothesis.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstructionError
from repro.succinct.wavelet_matrix import WaveletMatrix, _bit_reverse
from repro.succinct.wavelet_tree import WaveletTree

SEQ = [3, 1, 4, 1, 5, 2, 0, 5, 3, 3, 1, 0]
SIGMA = 6


@pytest.fixture(params=[WaveletMatrix, WaveletTree])
def structure(request):
    return request.param(SEQ, SIGMA)


class TestCommonOperations:
    def test_len_and_sigma(self, structure):
        assert len(structure) == len(SEQ)
        assert structure.sigma == SIGMA

    def test_access(self, structure):
        assert [structure.access(i) for i in range(len(SEQ))] == SEQ
        assert structure[0] == 3
        assert structure[-1] == 0

    def test_access_out_of_range(self, structure):
        with pytest.raises(IndexError):
            structure.access(len(SEQ))

    def test_rank(self, structure):
        for c in range(SIGMA):
            for i in range(len(SEQ) + 1):
                assert structure.rank(c, i) == SEQ[:i].count(c), (c, i)

    def test_rank_clamps(self, structure):
        assert structure.rank(3, 10_000) == SEQ.count(3)
        assert structure.rank(3, -2) == 0

    def test_rank_bad_symbol(self, structure):
        with pytest.raises(ValueError):
            structure.rank(SIGMA, 1)

    def test_select(self, structure):
        for c in range(SIGMA):
            positions = [i for i, v in enumerate(SEQ) if v == c]
            for j, pos in enumerate(positions):
                assert structure.select(c, j) == pos

    def test_select_out_of_range(self, structure):
        with pytest.raises(IndexError):
            structure.select(3, SEQ.count(3))

    def test_count(self, structure):
        for c in range(SIGMA):
            assert structure.count(c) == SEQ.count(c)

    def test_range_distinct(self, structure):
        for b, e in [(0, len(SEQ)), (2, 9), (5, 5), (9, 3)]:
            got = list(structure.range_distinct(b, e))
            window = SEQ[max(0, b):max(0, e)]
            assert [s for s, _, _ in got] == sorted(set(window))
            for sym, rb, re in got:
                assert rb == SEQ[:b].count(sym)
                assert re == SEQ[:e].count(sym)

    def test_range_list_symbols(self, structure):
        assert structure.range_list_symbols(0, 4) == sorted(set(SEQ[:4]))

    def test_range_intersect(self, structure):
        got = structure.range_intersect(0, 6, 6, 12)
        expected = sorted(set(SEQ[0:6]) & set(SEQ[6:12]))
        assert [t[0] for t in got] == expected
        for sym, r1b, r1e, r2b, r2e in got:
            assert r1e - r1b == SEQ[0:6].count(sym)
            assert r2e - r2b == SEQ[6:12].count(sym)

    def test_to_list(self, structure):
        assert structure.to_list() == SEQ

    def test_size_in_bits_positive(self, structure):
        assert structure.size_in_bits() > 0


class TestConstruction:
    @pytest.mark.parametrize("cls", [WaveletMatrix, WaveletTree])
    def test_empty_sequence(self, cls):
        wm = cls([], 4)
        assert len(wm) == 0
        assert wm.rank(0, 10) == 0
        assert list(wm.range_distinct(0, 5)) == []

    @pytest.mark.parametrize("cls", [WaveletMatrix, WaveletTree])
    def test_sigma_one(self, cls):
        wm = cls([0, 0, 0], 1)
        assert wm.to_list() == [0, 0, 0]
        assert wm.rank(0, 2) == 2
        assert wm.select(0, 2) == 2

    @pytest.mark.parametrize("cls", [WaveletMatrix, WaveletTree])
    def test_value_outside_alphabet(self, cls):
        with pytest.raises(ConstructionError):
            cls([4], 4)

    @pytest.mark.parametrize("cls", [WaveletMatrix, WaveletTree])
    def test_negative_value(self, cls):
        with pytest.raises(ConstructionError):
            cls([-1], 4)

    @pytest.mark.parametrize("cls", [WaveletMatrix, WaveletTree])
    def test_bad_sigma(self, cls):
        with pytest.raises(ConstructionError):
            cls([0], 0)

    def test_infers_sigma(self):
        wm = WaveletMatrix([5, 2, 7])
        assert wm.sigma == 8


class TestMatrixSpecific:
    def test_bit_reverse(self):
        assert _bit_reverse(0b001, 3) == 0b100
        assert _bit_reverse(0b110, 3) == 0b011
        assert _bit_reverse(0, 4) == 0
        assert _bit_reverse(0b1011, 4) == 0b1101

    def test_rank_pair(self):
        wm = WaveletMatrix(SEQ, SIGMA)
        for c in range(SIGMA):
            for b, e in [(0, 12), (3, 8), (5, 5)]:
                assert wm.rank_pair(c, b, e) == (
                    SEQ[:b].count(c), SEQ[:e].count(c)
                )

    def test_node_traversal_matches_distinct(self):
        wm = WaveletMatrix(SEQ, SIGMA)
        stack = [wm.root(2, 9)]
        leaves = []
        while stack:
            node = stack.pop()
            if node.is_empty():
                continue
            if wm.is_leaf(node):
                if node.prefix < wm.sigma:
                    leaves.append(
                        (wm.leaf_symbol(node), *wm.leaf_global_range(node))
                    )
                continue
            left, right = wm.children(node)
            stack.append(left)
            stack.append(right)
        assert sorted(leaves) == list(wm.range_distinct(2, 9))

    def test_children_on_leaf_raises(self):
        wm = WaveletMatrix(SEQ, SIGMA)
        node = wm.root()
        while not wm.is_leaf(node):
            node = wm.children(node)[0]
        with pytest.raises(ValueError):
            wm.children(node)
        with pytest.raises(ValueError):
            wm.leaf_symbol(wm.root())
        with pytest.raises(ValueError):
            wm.leaf_global_range(wm.root())

    def test_node_symbol_range_and_occurrences(self):
        wm = WaveletMatrix(SEQ, SIGMA)
        root = wm.root()
        lo, hi = wm.node_symbol_range(root)
        assert lo == 0 and hi >= SIGMA
        assert wm.node_occurrences(root) == len(SEQ)
        left, right = wm.children(root)
        assert (
            wm.node_occurrences(left) + wm.node_occurrences(right)
            == len(SEQ)
        )

    def test_range_next_value(self):
        wm = WaveletMatrix(SEQ, SIGMA)
        for b, e in [(0, 12), (2, 7)]:
            for lower in range(SIGMA + 2):
                window = [v for v in SEQ[b:e] if v >= lower]
                expected = min(window) if window else None
                assert wm.range_next_value(b, e, lower) == expected

    def test_range_count_distinct(self):
        wm = WaveletMatrix(SEQ, SIGMA)
        for b in range(len(SEQ) + 1):
            for e in range(b, len(SEQ) + 1):
                assert wm.range_count_distinct(b, e) == \
                    len(set(SEQ[b:e])), (b, e)

    def test_traversal_data_consistency(self):
        wm = WaveletMatrix(SEQ, SIGMA)
        levels, zeros, height, sigma, class_cum, bottom_start = \
            wm.traversal_data()
        assert height == wm.height and sigma == wm.sigma
        assert len(levels) == height
        assert class_cum[-1] == len(SEQ)
        # replicate rank via the raw arrays and compare
        for c in range(SIGMA):
            for i in (0, 3, 7, 12):
                b = i
                for level in range(height):
                    words, cum, n_bits = levels[level]
                    if b <= 0:
                        r1 = 0
                    elif b >= n_bits:
                        r1 = cum[-1]
                    else:
                        w, off = b >> 6, b & 63
                        r1 = cum[w]
                        if off:
                            r1 += (words[w]
                                   & ((1 << off) - 1)).bit_count()
                    bit = (c >> (height - 1 - level)) & 1
                    b = zeros[level] + r1 if bit else b - r1
                assert b - bottom_start[c] == wm.rank(c, i), (c, i)

    def test_node_equality_and_hash(self):
        wm = WaveletMatrix(SEQ, SIGMA)
        assert wm.root(0, 3) == wm.root(0, 3)
        assert wm.root(0, 3) != wm.root(0, 4)
        assert hash(wm.root(0, 3)) == hash(wm.root(0, 3))
        assert wm.root(0, 3).node_id == (0, 0)


@pytest.mark.hypothesis
@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    sigma=st.integers(min_value=1, max_value=40),
)
def test_matrix_matches_tree(data, sigma):
    seq = data.draw(
        st.lists(st.integers(min_value=0, max_value=sigma - 1), max_size=200)
    )
    wm = WaveletMatrix(seq, sigma)
    wt = WaveletTree(seq, sigma)
    assert wm.to_list() == wt.to_list() == seq
    b = data.draw(st.integers(min_value=0, max_value=len(seq)))
    e = data.draw(st.integers(min_value=0, max_value=len(seq)))
    assert list(wm.range_distinct(b, e)) == list(wt.range_distinct(b, e))
    c = data.draw(st.integers(min_value=0, max_value=sigma - 1))
    i = data.draw(st.integers(min_value=0, max_value=len(seq)))
    assert wm.rank(c, i) == wt.rank(c, i)
    if seq.count(c):
        j = data.draw(st.integers(min_value=0, max_value=seq.count(c) - 1))
        assert wm.select(c, j) == wt.select(c, j)


@pytest.mark.hypothesis
@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    sigma=st.integers(min_value=1, max_value=24),
)
def test_matrix_ranges_match_tree_under_instrumentation(data, sigma):
    """``range_distinct``/``range_intersect`` agree with the pointer
    tree, with the metrics class-swap both off and on — instrumentation
    must never change results, only count them."""
    from repro.obs import Metrics, instrument_matrix

    seq = data.draw(
        st.lists(st.integers(min_value=0, max_value=sigma - 1),
                 max_size=120)
    )
    wm = WaveletMatrix(seq, sigma)
    wt = WaveletTree(seq, sigma)
    n = len(seq)
    b1 = data.draw(st.integers(min_value=0, max_value=n))
    e1 = data.draw(st.integers(min_value=0, max_value=n))
    b2 = data.draw(st.integers(min_value=0, max_value=n))
    e2 = data.draw(st.integers(min_value=0, max_value=n))

    plain_distinct = list(wm.range_distinct(b1, e1))
    plain_intersect = wm.range_intersect(b1, e1, b2, e2)

    metrics = Metrics()
    with instrument_matrix(wm, metrics):
        counted_distinct = list(wm.range_distinct(b1, e1))
        counted_intersect = wm.range_intersect(b1, e1, b2, e2)
    assert type(wm) is WaveletMatrix  # classes restored on exit

    expected_distinct = list(wt.range_distinct(b1, e1))
    expected_intersect = wt.range_intersect(b1, e1, b2, e2)
    assert plain_distinct == counted_distinct == expected_distinct
    assert plain_intersect == counted_intersect == expected_intersect
    assert metrics.count("wavelet.range_distinct") == 1
    assert metrics.count("wavelet.range_intersect") == 1
