"""Tests for the fixed-width packed integer array."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstructionError
from repro.succinct.int_array import PackedIntArray, bits_for


class TestBitsFor:
    def test_small_values(self):
        assert bits_for(0) == 1
        assert bits_for(1) == 1
        assert bits_for(2) == 2
        assert bits_for(255) == 8
        assert bits_for(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ConstructionError):
            bits_for(-1)


class TestPackedIntArray:
    def test_empty(self):
        arr = PackedIntArray([])
        assert len(arr) == 0
        assert list(arr) == []
        assert arr.width == 1

    def test_roundtrip(self):
        values = [0, 5, 1023, 17, 512]
        arr = PackedIntArray(values)
        assert arr.width == 10
        assert list(arr) == values
        assert arr.to_array().tolist() == values

    def test_explicit_width(self):
        arr = PackedIntArray([1, 2, 3], width=16)
        assert arr.width == 16
        assert list(arr) == [1, 2, 3]

    def test_width_too_small(self):
        with pytest.raises(ConstructionError):
            PackedIntArray([256], width=8)

    def test_width_out_of_range(self):
        with pytest.raises(ConstructionError):
            PackedIntArray([1], width=0)
        with pytest.raises(ConstructionError):
            PackedIntArray([1], width=65)

    def test_negative_rejected(self):
        with pytest.raises(ConstructionError):
            PackedIntArray([-1])

    def test_negative_index(self):
        arr = PackedIntArray([10, 20, 30])
        assert arr[-1] == 30

    def test_index_out_of_range(self):
        arr = PackedIntArray([10])
        with pytest.raises(IndexError):
            arr[1]

    def test_cross_word_values(self):
        # width 37 guarantees values straddle 64-bit word boundaries
        values = [(1 << 37) - 1, 0, 123456789, (1 << 36) + 17]
        arr = PackedIntArray(values, width=37)
        assert list(arr) == values

    def test_size_in_bits(self):
        arr = PackedIntArray(list(range(100)), width=7)
        # 700 payload bits rounded to words, plus one pad word
        assert arr.size_in_bits() >= 700


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=(1 << 40) - 1), max_size=80)
)
def test_roundtrip_property(values):
    arr = PackedIntArray(values)
    assert list(arr) == values
    for i, v in enumerate(values):
        assert arr[i] == v
