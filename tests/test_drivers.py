"""End-to-end tests of the experiment drivers at micro scale."""

from __future__ import annotations

import pytest

from repro.bench.context import tiny_context
from repro.bench.costmodel import CostModel
from repro.bench.fig8 import compute_fig8, win_report
from repro.bench.table2 import Table2, compute_table2, format_table2


@pytest.fixture(scope="module")
def context():
    return tiny_context(
        n_nodes=150, n_edges=800, n_predicates=8, log_scale=0.012,
        timeout=5.0,
    )


@pytest.fixture(scope="module")
def table(context):
    return compute_table2(context)


class TestTable2Driver:
    def test_engines_present(self, table):
        assert table.engines() == [
            "ring", "alp-jena", "seminaive-virtuoso", "alp-blazegraph"
        ]

    def test_space_column(self, table):
        assert table.space["ring"] < min(
            v for k, v in table.space.items() if k != "ring"
        )

    def test_headline_derivations(self, table):
        speedup, runner_up = table.speedup_vs_next_best()
        assert speedup > 0
        assert runner_up != "ring"
        lo, hi = table.space_ratio_range()
        assert 1 < lo <= hi

    def test_format_contains_all_rows(self, table):
        text = format_table2(table)
        for label in ("Space", "Average", "Median", "Timeouts",
                      "Average c-to-v", "Average v-to-v", "Ops (mean)",
                      "Model avg", "packed data baseline",
                      "working space"):
            assert label in text, label

    def test_no_engine_disagreements(self, table):
        assert table.results.consistency_check() == []

    def test_is_table2_instance(self, table):
        assert isinstance(table, Table2)


class TestFig8Driver:
    def test_win_report(self, context):
        results = compute_fig8(context)
        report = win_report(context, results)
        assert "per-pattern winners" in report
        assert "wall-clock: ring wins" in report
        assert "modeled substrate: ring wins" in report

    def test_modeled_wins_consistent(self, context):
        results = compute_fig8(context)
        model = CostModel.default()
        wins = model.pattern_wins(results)
        assert set(wins) == set(results.patterns())
