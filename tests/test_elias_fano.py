"""Tests for the Elias-Fano monotone sequence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstructionError
from repro.succinct.elias_fano import EliasFano


class TestBasics:
    def test_empty(self):
        ef = EliasFano([])
        assert len(ef) == 0
        assert ef.successor_index(0) == 0

    def test_simple(self):
        values = [0, 0, 3, 7, 7, 12, 40]
        ef = EliasFano(values)
        assert list(ef) == values
        assert ef[3] == 7
        assert ef[-1] == 40

    def test_all_equal(self):
        ef = EliasFano([5, 5, 5])
        assert list(ef) == [5, 5, 5]

    def test_starts_at_zero_dense(self):
        values = list(range(100))
        ef = EliasFano(values)
        assert list(ef) == values

    def test_sparse(self):
        values = [0, 1_000_000, 2_000_000]
        ef = EliasFano(values)
        assert list(ef) == values
        # heavily sparse sequences compress far below 64 bits/entry
        assert ef.size_in_bits() < 3 * 64 * 10

    def test_non_monotone_rejected(self):
        with pytest.raises(ConstructionError):
            EliasFano([3, 1])

    def test_index_errors(self):
        ef = EliasFano([1, 2])
        with pytest.raises(IndexError):
            ef.get(2)
        with pytest.raises(IndexError):
            ef.get(-1)

    def test_successor_index(self):
        ef = EliasFano([2, 4, 4, 9])
        assert ef.successor_index(0) == 0
        assert ef.successor_index(2) == 0
        assert ef.successor_index(3) == 1
        assert ef.successor_index(4) == 1
        assert ef.successor_index(5) == 3
        assert ef.successor_index(9) == 3
        assert ef.successor_index(10) == 4

    def test_size_model(self):
        ef = EliasFano(list(range(0, 1000, 7)))
        assert ef.size_in_bits_model() > 0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=150))
def test_roundtrip_property(raw):
    values = sorted(raw)
    ef = EliasFano(values)
    assert list(ef) == values
    for probe in (0, 1, 5_000, 10_001):
        expected = next(
            (i for i, v in enumerate(values) if v >= probe), len(values)
        )
        assert ef.successor_index(probe) == expected
