"""Tests for the serving layer: QueryService, admission, degradation.

The concurrency-heavy properties (bit-identical results under a pool,
counter isolation) live in ``test_serve_concurrency.py``; cache
correctness in ``test_serve_cache.py``.  This module covers the
service mechanics themselves: submission, tickets, admission control,
deadlines, cancellation plumbing, retry backoff, metrics and shutdown.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.engine import RingRPQEngine
from repro.core.result import QueryResult, QueryStats
from repro.errors import OverloadedError
from repro.obs.metrics import Metrics
from repro.obs.slowlog import SlowQueryLog
from repro.serve import AdmissionController, QueryService


class BlockingEngine:
    """A stand-in engine whose evaluations block until released.

    Lets admission/cancellation tests control exactly how many queries
    are in flight without depending on wall-clock query cost.
    """

    name = "blocking"

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = 0

    def evaluate(self, query, timeout=None, limit=None, metrics=None,
                 cancel=None):
        self.calls += 1
        self.started.set()
        while not self.release.wait(0.01):
            if cancel is not None and cancel.is_set():
                stats = QueryStats()
                stats.cancelled = True
                return QueryResult(stats=stats)
        return QueryResult(pairs={("a", "b")}, stats=QueryStats())


class TestAdmissionController:
    def test_fast_reject_when_full(self):
        ctl = AdmissionController(max_pending=2)
        ctl.admit()
        ctl.admit()
        with pytest.raises(OverloadedError) as info:
            ctl.admit()
        err = info.value
        assert err.pending == 2 and err.capacity == 2
        assert err.retry_after > 0
        assert ctl.rejected == 1

    def test_finish_frees_slot(self):
        ctl = AdmissionController(max_pending=1)
        ctl.admit()
        ctl.start()
        assert ctl.inflight == 1
        ctl.finish()
        assert ctl.pending == 0 and ctl.inflight == 0
        ctl.admit()  # does not raise

    def test_abandon_frees_slot_without_inflight(self):
        ctl = AdmissionController(max_pending=1)
        ctl.admit()
        ctl.abandon()
        assert ctl.pending == 0 and ctl.inflight == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)


class TestQueryService:
    def test_submit_matches_direct_evaluation(self, kg_index):
        query = "(?x, p0/p1, ?y)"
        expected = RingRPQEngine(kg_index).evaluate(query).pairs
        with QueryService(kg_index, workers=2, cache_size=0) as service:
            result = service.submit(query).result(timeout=30)
        assert result.pairs == expected
        assert not result.stats.cached

    def test_evaluate_shortcut(self, kg_index):
        with QueryService(kg_index, workers=1, cache_size=0) as service:
            result = service.evaluate("(?x, p2, ?y)")
        assert result.pairs == RingRPQEngine(kg_index).evaluate(
            "(?x, p2, ?y)").pairs

    def test_run_batch_order(self, kg_index):
        queries = ["(?x, p0, ?y)", "(?x, p1, ?y)", "(?x, p0|p1, ?y)"]
        engine = RingRPQEngine(kg_index)
        expected = [engine.evaluate(q).pairs for q in queries]
        with QueryService(kg_index, workers=3, cache_size=0) as service:
            results = service.run(queries)
        assert [r.pairs for r in results] == expected

    def test_parse_error_is_synchronous(self, kg_index):
        with QueryService(kg_index, workers=1) as service:
            with pytest.raises(Exception):
                service.submit("this is not a query")
            # The malformed query never occupied a queue slot.
            assert service.admission.pending == 0

    def test_submit_after_close_raises(self, kg_index):
        service = QueryService(kg_index, workers=1)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit("(?x, p0, ?y)")
        service.close()  # idempotent

    def test_overload_fast_reject(self, kg_index):
        engine = BlockingEngine()
        service = QueryService(kg_index, workers=1, max_pending=2,
                               cache_size=0, engine=engine)
        try:
            t1 = service.submit("(?x, p0, ?y)")
            assert engine.started.wait(5)
            t2 = service.submit("(?x, p1, ?y)")  # queued
            with pytest.raises(OverloadedError):
                service.submit("(?x, p2, ?y)")
            engine.release.set()
            assert t1.result(timeout=10).pairs == {("a", "b")}
            assert t2.result(timeout=10).pairs == {("a", "b")}
        finally:
            engine.release.set()
            service.close()

    def test_submit_with_retry_succeeds_after_release(self, kg_index):
        engine = BlockingEngine()
        service = QueryService(kg_index, workers=1, max_pending=1,
                               cache_size=0, engine=engine)
        try:
            first = service.submit("(?x, p0, ?y)")
            assert engine.started.wait(5)

            def unblock():
                time.sleep(0.1)
                engine.release.set()

            threading.Thread(target=unblock, daemon=True).start()
            second = service.submit_with_retry(
                "(?x, p1, ?y)", retries=50, backoff=0.02,
                backoff_factor=1.0,
            )
            assert first.result(timeout=10).pairs == {("a", "b")}
            assert second.result(timeout=10).pairs == {("a", "b")}
        finally:
            engine.release.set()
            service.close()

    def test_submit_with_retry_gives_up(self, kg_index):
        engine = BlockingEngine()
        service = QueryService(kg_index, workers=1, max_pending=1,
                               cache_size=0, engine=engine)
        try:
            service.submit("(?x, p0, ?y)")
            assert engine.started.wait(5)
            with pytest.raises(OverloadedError):
                service.submit_with_retry(
                    "(?x, p1, ?y)", retries=2, backoff=0.01,
                )
        finally:
            engine.release.set()
            service.close()

    def test_cancel_while_queued_never_runs(self, kg_index):
        engine = BlockingEngine()
        service = QueryService(kg_index, workers=1, cache_size=0,
                               engine=engine)
        try:
            blocker = service.submit("(?x, p0, ?y)")
            assert engine.started.wait(5)
            queued = service.submit("(?x, p1, ?y)")
            assert service.cancel(queued.query_id)
            engine.release.set()
            result = queued.result(timeout=10)
            assert result.stats.cancelled
            assert result.pairs == set()
            # Only the blocker ever reached the engine.
            blocker.result(timeout=10)
            assert engine.calls == 1
            # Unknown ids are reported, not raised.
            assert not service.cancel("q999")
        finally:
            engine.release.set()
            service.close()

    def test_cancel_running_query(self, kg_index):
        engine = BlockingEngine()
        service = QueryService(kg_index, workers=1, cache_size=0,
                               engine=engine)
        try:
            ticket = service.submit("(?x, p0, ?y)")
            assert engine.started.wait(5)
            assert service.cancel(ticket.query_id)
            result = ticket.result(timeout=10)
            assert result.stats.cancelled
        finally:
            engine.release.set()
            service.close()

    def test_deadline_expired_in_queue_degrades(self, kg_index):
        engine = BlockingEngine()
        service = QueryService(kg_index, workers=1, cache_size=0,
                               engine=engine)
        try:
            blocker = service.submit("(?x, p0, ?y)")
            assert engine.started.wait(5)
            doomed = service.submit(
                "(?x, p1, ?y)", deadline=time.monotonic() + 0.05,
            )
            time.sleep(0.1)
            engine.release.set()
            result = doomed.result(timeout=10)
            # Degradation contract: expired deadline returns an empty
            # partial tagged truncated, never an exception — and the
            # index was never touched for it.
            assert result.stats.timed_out and result.stats.truncated
            assert result.pairs == set()
            blocker.result(timeout=10)
            assert engine.calls == 1
        finally:
            engine.release.set()
            service.close()

    def test_result_wait_timeout(self, kg_index):
        engine = BlockingEngine()
        service = QueryService(kg_index, workers=1, cache_size=0,
                               engine=engine)
        try:
            ticket = service.submit("(?x, p0, ?y)")
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.05)
        finally:
            engine.release.set()
            service.close()

    def test_metrics_and_slowlog(self, kg_index):
        obs = Metrics(span_capacity=256)
        slow = SlowQueryLog(capacity=4)
        with QueryService(kg_index, workers=2, cache_size=8,
                          metrics=obs, slow_log=slow) as service:
            service.evaluate("(?x, p0/p1, ?y)")
            service.evaluate("(?x, p0/p1, ?y)")  # cache hit
            # Gauges report current levels; everything drained by now.
            assert obs.gauge("serve.queue_depth") == 0
            assert obs.gauge("serve.inflight") == 0
            assert obs.gauge("serve.cache_size") == 1
        assert obs.count("serve.submitted") == 2
        assert obs.count("serve.completed") == 1
        assert obs.count("serve.cache_misses") == 1
        assert obs.count("serve.cache_hits") == 1
        # close() zeroes every load gauge: a scrape after shutdown
        # must not report phantom load.
        assert obs.gauge("serve.queue_depth") == 0
        assert obs.gauge("serve.inflight") == 0
        assert obs.gauge("serve.cache_size") == 0
        # Latency histograms observed both sides of the queue.
        assert obs.histogram("serve.wait_seconds") is not None
        assert obs.histogram("serve.query_seconds") is not None
        # Worker spans were merged into the service registry.
        assert any(s.name.startswith("worker:") for s in obs.spans.spans)
        # The evaluation landed in the slow log, attributed to serving.
        entries = slow.entries()
        assert entries and entries[0].engine.startswith("serve/")

    def test_stats_snapshot(self, kg_index):
        with QueryService(kg_index, workers=2, cache_size=4) as service:
            service.evaluate("(?x, p0, ?y)")
            snap = service.stats()
        assert snap["workers"] == 2
        assert snap["cache"]["capacity"] == 4
        assert snap["admission"]["admitted"] == 1
        assert snap["fingerprint"]
