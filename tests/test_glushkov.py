"""Tests for the Glushkov construction and its defining properties."""

from __future__ import annotations

import itertools
import re as pyre

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.bits import iter_set_bits
from repro.automata.glushkov import (
    build_glushkov,
    resolve_atom_to_predicates,
)
from repro.automata.parser import parse_regex
from repro.automata.syntax import NegatedClass, Symbol
from repro.graph.model import Graph
from repro.ring.dictionary import Dictionary


class TestStructure:
    def test_state_count_is_m_plus_one(self):
        for source, m in [("a", 1), ("a/b", 2), ("a|b|c", 3),
                          ("(a/b)*/c+", 3), ("a/a/a/a", 4)]:
            automaton = build_glushkov(parse_regex(source))
            assert automaton.m == m
            assert automaton.num_states == m + 1

    def test_epsilon_expression(self):
        automaton = build_glushkov(parse_regex("ε"))
        assert automaton.m == 0
        assert automaton.nullable
        assert automaton.final_mask == 1  # state 0 accepting

    def test_no_transitions_into_initial(self):
        for source in ["a*", "(a|b)+", "a/b*", "(a?/b)*"]:
            automaton = build_glushkov(parse_regex(source))
            for _, _, target in automaton.transitions():
                assert target != 0

    def test_homogeneous_inputs(self):
        # Glushkov property 3: all transitions into a state share its
        # atom — structural by construction; verify via transitions().
        automaton = build_glushkov(parse_regex("a/(b|c)*/a"))
        incoming: dict[int, set[str]] = {}
        for _, atom, target in automaton.transitions():
            incoming.setdefault(target, set()).add(str(atom))
        for labels in incoming.values():
            assert len(labels) == 1

    def test_fact1(self):
        """Fact 1: reach(X, c) == reach(X, any) & reach(any, c)."""
        automaton = build_glushkov(parse_regex("a/(b*)/b"))
        b_masks = automaton.b_masks_symbolic()
        for x_mask in range(1 << automaton.num_states):
            step_any = 0
            for x in iter_set_bits(x_mask):
                step_any |= automaton.follow_masks[x]
            for symbol, b in b_masks.items():
                # direct computation of states reached from X by symbol
                direct = 0
                for src, atom, target in automaton.transitions():
                    if (x_mask >> src) & 1 and str(atom) == symbol:
                        direct |= 1 << target
                assert direct == step_any & b, (x_mask, symbol)

    def test_paper_fig2_tables(self):
        automaton = build_glushkov(parse_regex("a/(b*)/b"))
        b = automaton.b_masks_symbolic()
        assert automaton.state_mask_str(b["a"]) == "0100"
        assert automaton.state_mask_str(b["b"]) == "0011"
        assert automaton.state_mask_str(automaton.final_mask) == "0001"

    def test_pred_masks_invert_follow(self):
        automaton = build_glushkov(parse_regex("(a|b)*/c"))
        for x in range(automaton.num_states):
            for y in iter_set_bits(automaton.follow_masks[x]):
                assert (automaton.pred_masks[y] >> x) & 1


class TestMembership:
    @pytest.mark.parametrize(
        "source,accepted,rejected",
        [
            ("a", ["a"], ["", "b", "aa"]),
            ("a*", ["", "a", "aaa"], ["b", "ab"]),
            ("a/b", ["ab"], ["a", "b", "ba", "abb"]),
            ("a|b", ["a", "b"], ["", "ab"]),
            ("(a/b)+", ["ab", "abab"], ["", "a", "aba"]),
            ("a?/b", ["b", "ab"], ["a", "aab"]),
        ],
    )
    def test_accepts(self, source, accepted, rejected):
        automaton = build_glushkov(parse_regex(source))
        for word in accepted:
            assert automaton.accepts(list(word)), (source, word)
        for word in rejected:
            assert not automaton.accepts(list(word)), (source, word)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_matches_python_re(self, data):
        literals = "abc"
        depth = data.draw(st.integers(0, 2))

        def gen(d):
            kind = data.draw(st.sampled_from(
                ["atom", "concat", "union", "star", "plus", "opt"]
                if d < 2 else ["atom"]
            ))
            if kind == "atom":
                return data.draw(st.sampled_from(list(literals)))
            if kind == "concat":
                return f"{gen(d + 1)}/{gen(d + 1)}"
            if kind == "union":
                return f"({gen(d + 1)}|{gen(d + 1)})"
            if kind == "star":
                return f"({gen(d + 1)})*"
            if kind == "plus":
                return f"({gen(d + 1)})+"
            return f"({gen(d + 1)})?"

        source = gen(depth)
        automaton = build_glushkov(parse_regex(source))
        pattern = pyre.compile("(" + source.replace("/", "") + r")\Z")
        for length in range(4):
            for word in itertools.product(literals, repeat=length):
                expected = pattern.match("".join(word)) is not None
                assert automaton.accepts(list(word)) == expected


class TestAtomResolution:
    @pytest.fixture()
    def dictionary(self):
        graph = Graph(
            [("a", "p", "b"), ("a", "q", "b"), ("a", "l", "b")],
            symmetric_predicates=("l",),
        )
        return Dictionary.from_graph(graph)

    def test_symbol(self, dictionary):
        assert resolve_atom_to_predicates(Symbol("p"), dictionary) == {
            dictionary.predicate_id("p")
        }

    def test_inverse_symbol(self, dictionary):
        assert resolve_atom_to_predicates(Symbol("^p"), dictionary) == {
            dictionary.predicate_id("^p")
        }

    def test_inverse_of_symmetric(self, dictionary):
        # ^l resolves to l itself (self-inverse predicate)
        assert resolve_atom_to_predicates(Symbol("^l"), dictionary) == {
            dictionary.predicate_id("l")
        }

    def test_unknown_symbol_empty(self, dictionary):
        assert resolve_atom_to_predicates(Symbol("zz"), dictionary) == \
            frozenset()
        assert resolve_atom_to_predicates(Symbol("^zz"), dictionary) == \
            frozenset()

    def test_negated_forward(self, dictionary):
        got = resolve_atom_to_predicates(
            NegatedClass(frozenset({"p"}), inverse=False), dictionary
        )
        assert got == {
            dictionary.predicate_id("q"), dictionary.predicate_id("l")
        }

    def test_negated_inverse(self, dictionary):
        got = resolve_atom_to_predicates(
            NegatedClass(frozenset({"q"}), inverse=True), dictionary
        )
        assert got == {
            dictionary.predicate_id("^p"), dictionary.predicate_id("l")
        }

    def test_b_masks_lazy(self, dictionary):
        automaton = build_glushkov(parse_regex("p/q"))
        masks = automaton.b_masks(
            lambda atom: resolve_atom_to_predicates(atom, dictionary)
        )
        # only predicates used by the query appear
        assert set(masks) == {
            dictionary.predicate_id("p"), dictionary.predicate_id("q")
        }
